package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"chameleon/internal/analyzer"
	"chameleon/internal/fwd"
	"chameleon/internal/monitor"
	"chameleon/internal/obs"
	"chameleon/internal/plan"
	"chameleon/internal/pool"
	"chameleon/internal/runtime"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/sim"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

// Case is one chaos experiment: a scenario topology, a dominant fault
// kind, and the seed driving both the scenario and the fault schedule.
type Case struct {
	Topology string
	Fault    sim.FaultKind
	Seed     uint64
}

// Outcome classifies how a chaos run ended. Every outcome except
// OutcomeViolation is acceptable: the controller either succeeded or
// visibly degraded. A violation — an invariant breach in a run the
// controller reported as clean — is the failure chaos testing hunts.
type Outcome int

const (
	// OutcomeClean: no faults materialized and the plan ran unperturbed.
	OutcomeClean Outcome = iota
	// OutcomeRecovered: faults were injected and the self-healing
	// machinery absorbed them; all invariants verified.
	OutcomeRecovered
	// OutcomeDegraded: the controller visibly degraded (monitor alarm,
	// escalation, or a ReactCommit cut-over) but completed.
	OutcomeDegraded
	// OutcomeAborted: the controller gave up visibly and released the
	// transient state.
	OutcomeAborted
	// OutcomeViolation: an invariant was breached in a run the controller
	// did not flag — the one unacceptable outcome.
	OutcomeViolation
)

func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeRecovered:
		return "recovered"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeAborted:
		return "aborted"
	case OutcomeViolation:
		return "VIOLATION"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// CaseResult reports one chaos run. Every field is a deterministic
// function of the Case (simulated time only, no wall clock), so two runs
// of the same case compare byte-for-byte.
type CaseResult struct {
	Topology string
	Fault    string
	Seed     uint64

	Outcome Outcome
	Err     string
	// SimDuration is the simulated execution time (zero when aborted).
	SimDuration time.Duration
	Rounds      int

	CommandsApplied int
	CommandFaults   int
	MessageFaults   int
	Flaps           int

	Recovery  runtime.RecoveryStats
	Committed bool

	Violations []string
	// TransientViolationTime is the union duration of the transient-state
	// monitor's violation intervals (reach + loop-freedom) during an
	// unflagged execution; zero for flagged, aborted, or clean runs.
	TransientViolationTime time.Duration
	// Fingerprint hashes the fault schedule and the outcome; equal
	// fingerprints mean identical faults and identical results.
	Fingerprint uint64
}

// injectorFor builds the fault-matrix column for one dominant fault kind.
// MaxAttemptFaults 2 with the executor's default 3 retries means every
// command eventually lands — persistent-fault escalation is exercised
// separately by the runtime tests.
func injectorFor(kind sim.FaultKind, seed uint64) *Injector {
	cfg := InjectorConfig{Seed: seed, DelayFactor: 3, MaxAttemptFaults: 2}
	switch kind {
	case sim.FaultDrop:
		cfg.CommandRate = 0.30
		cfg.CommandKinds = []sim.FaultKind{sim.FaultDrop}
	case sim.FaultDelay:
		cfg.CommandRate = 0.35
		cfg.CommandKinds = []sim.FaultKind{sim.FaultDelay}
		cfg.MessageRate = 0.05
		cfg.MessageKinds = []sim.FaultKind{sim.FaultDelay}
	case sim.FaultDuplicate:
		cfg.CommandRate = 0.35
		cfg.CommandKinds = []sim.FaultKind{sim.FaultDuplicate}
		cfg.MessageRate = 0.05
		cfg.MessageKinds = []sim.FaultKind{sim.FaultDuplicate}
	case sim.FaultPartial:
		cfg.CommandRate = 0.30
		cfg.CommandKinds = []sim.FaultKind{sim.FaultPartial}
	}
	// FaultFlap and FaultNone inject no per-command faults; flaps are
	// scheduled as external events.
	return NewInjector(cfg)
}

// buildScenario constructs the named scenario deterministically.
func buildScenario(name string, seed uint64) (*scenario.Scenario, error) {
	if name == "RunningExample" {
		return scenario.RunningExample(), nil
	}
	return scenario.CaseStudy(name, scenario.Config{Seed: seed})
}

// reachabilitySpec builds G ∧_n reach(n); chaos deliberately rebuilds its
// own pipeline instead of importing the eval package (which imports chaos
// for its report table).
func reachabilitySpec(g *topology.Graph) *spec.Spec {
	b := spec.NewBuilder()
	var es []*spec.Expr
	for _, n := range g.Internal() {
		es = append(es, b.Reach(n))
	}
	return spec.NewSpec(b, b.Globally(b.And(es...)))
}

// flapEvents schedules nflaps session flaps over internal iBGP sessions,
// spread across the execution, counting actual flaps into *flapped.
func flapEvents(s *scenario.Scenario, seed uint64, nflaps int, flapped *int) []runtime.ScheduledEvent {
	var pairs [][2]topology.NodeID
	for _, n := range s.Graph.Internal() {
		for _, nb := range s.Net.Sessions(n) {
			if nb > n && !s.Graph.Node(nb).External {
				pairs = append(pairs, [2]topology.NodeID{n, nb})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	if len(pairs) == 0 {
		return nil
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xd1b54a32d192ed03))
	perm := rng.Perm(len(pairs))
	if nflaps > len(pairs) {
		nflaps = len(pairs)
	}
	const hold = 25 * time.Second
	var evs []runtime.ScheduledEvent
	for i := 0; i < nflaps; i++ {
		a, b := pairs[perm[i]][0], pairs[perm[i]][1]
		evs = append(evs, runtime.ScheduledEvent{
			After: 40*time.Second + time.Duration(i)*45*time.Second,
			Name:  fmt.Sprintf("flap n%d–n%d", int(a), int(b)),
			Apply: func(n *sim.Network) {
				if n.FlapSession(a, b, hold) {
					*flapped++
				}
			},
		})
	}
	return evs
}

// timelineViolations renders the transient-state monitor's violation
// intervals as the chaos report's violation strings.
func timelineViolations(tl *monitor.Timeline) []string {
	var out []string
	for _, v := range tl.Violations {
		out = append(out, fmt.Sprintf("%s violated %.2fs–%.2fs (%d nodes)",
			v.Invariant, v.Start.Seconds(), v.End.Seconds(), len(v.Nodes)))
	}
	return out
}

// verifyEndState checks the trace-shape guarantees of §3 that the online
// monitor cannot see per state: at most one next-hop change per node,
// final state equal to the analyzed target, and bounded transient eBGP
// exports. Per-state loop-freedom and reachability are the transient-state
// monitor's job (see RunCaseCtx). Session flaps legitimately cause extra
// (forwarding-equivalent) churn and export refreshes, so strict=false
// skips the change-count and export bounds — harmful flaps are caught by
// the monitor instead.
func verifyEndState(a *analyzer.Analysis, s *scenario.Scenario, start time.Duration, strict bool) []string {
	var viol []string
	full := s.Net.Trace(s.Prefix)
	full.Compact()
	// Restrict to the execution window: the trace also records the
	// scenario's initial bring-up convergence, which precedes the plan and
	// is outside Chameleon's responsibility.
	lo := start.Seconds() - 1e-9
	var tr fwd.Trace
	for i, ts := range full.Times {
		if ts >= lo {
			tr.Times = append(tr.Times, ts)
			tr.States = append(tr.States, full.States[i])
		}
	}
	if len(tr.States) == 0 {
		return []string{"no forwarding trace recorded during execution"}
	}
	internal := s.Graph.Internal()
	final := tr.States[len(tr.States)-1]
	for _, n := range internal {
		if final[n] != a.NHNew[n] {
			viol = append(viol, fmt.Sprintf("node n%d final next hop %d, want %d",
				int(n), int(final[n]), int(a.NHNew[n])))
		}
	}
	if strict {
		for _, n := range internal {
			changes := 0
			prev := tr.States[0][n]
			for _, st := range tr.States[1:] {
				if st[n] != prev {
					changes++
					prev = st[n]
				}
			}
			if changes > 1 {
				viol = append(viol, fmt.Sprintf("node n%d changed next hop %d times", int(n), changes))
			}
		}
		if got, bound := s.Net.EBGPExports(s.Prefix), 3*len(s.Ext); got > bound {
			viol = append(viol, fmt.Sprintf("%d transient eBGP exports (bound %d)", got, bound))
		}
	}
	return viol
}

// RunCase executes one chaos case end to end: build the scenario, compile
// a plan, install the seeded injector (and flap schedule), execute under
// supervision, then classify the outcome and verify the invariants
// offline. The same Case always produces the identical CaseResult.
func RunCase(c Case) (*CaseResult, error) {
	return RunCaseCtx(context.Background(), c)
}

// RunCaseCtx is RunCase with a context: cancellation propagates into the
// scheduler's solver and the executor's supervision loop, and a recorder
// carried by ctx observes the run (a chaos-case span over the analyze,
// schedule and execute spans, plus the chaos_cases / chaos_violations
// counters). Observation never perturbs the case: the CaseResult — and its
// fingerprint — is identical with and without a recorder.
func RunCaseCtx(ctx context.Context, c Case) (*CaseResult, error) {
	ctx, span := obs.StartSpan(ctx, "chaos-case",
		obs.String("topology", c.Topology),
		obs.String("fault", c.Fault.String()),
		obs.Int("seed", int64(c.Seed)))
	defer span.End()
	span.Add(obs.CtrChaosCases, 1)

	s, err := buildScenario(c.Topology, c.Seed)
	if err != nil {
		return nil, err
	}
	a, err := analyzer.AnalyzeCtx(ctx, s.Net, s.FinalNetwork(), s.Prefix)
	if err != nil {
		return nil, err
	}
	schedOpts := scheduler.DefaultOptions()
	// A deterministic solver budget instead of wall-clock limits: the
	// schedule — and with it the whole case, fingerprint included — must
	// not depend on how loaded the machine is or how many sweep workers
	// share it.
	schedOpts.SolverNodeBudget = scheduler.DeterministicNodeBudget
	sched, err := scheduler.ScheduleCtx(ctx, a, reachabilitySpec(s.Graph), schedOpts)
	if err != nil {
		return nil, err
	}
	p, err := plan.Compile(a, sched, s.Commands)
	if err != nil {
		return nil, err
	}

	inj := injectorFor(c.Fault, c.Seed)
	s.Net.SetFaultInjector(inj)

	flapped := 0
	opts := runtime.DefaultOptions(c.Seed)
	opts.Monitor = func(net *sim.Network) bool {
		st := net.ForwardingState(s.Prefix)
		for _, n := range s.Graph.Internal() {
			if !st.Reach(n) {
				return false
			}
		}
		return true
	}
	if c.Fault == sim.FaultFlap {
		opts.ExternalEvents = flapEvents(s, c.Seed, 2, &flapped)
	}

	// The transient-state monitor observes every forwarding snapshot of
	// the execution online (reach + loop-freedom, per-round attribution).
	// No convergence gate here: chaos measures the executor under its
	// default advancement policy, and gating would shift fault timing.
	mon := monitor.New(monitor.Config{
		Name: "chaos",
		Invariants: []monitor.Invariant{
			monitor.ReachAll(s.Graph), monitor.LoopFree(),
		},
	})
	opts.PhaseObserver = mon.SetPhase

	ex := runtime.NewExecutor(s.Net, opts)
	unbind := mon.Bind(s.Net)
	res, execErr := ex.ExecuteCtx(ctx, p)
	// Unbind before any Abort below: teardown churn is outside the §3
	// guarantee and must not enter the timeline.
	unbind()
	if cerr := ctx.Err(); cerr != nil {
		// Caller cancellation is not a controller abort; the case has no
		// outcome.
		return nil, cerr
	}
	rec := ex.Recovery()

	out := &CaseResult{
		Topology: c.Topology,
		Fault:    c.Fault.String(),
		Seed:     c.Seed,
		Rounds:   sched.R,
		Recovery: rec,
	}
	if execErr != nil {
		// The controller gave up; release the transient state so the
		// network is left clean — a visible abort, never a silent one.
		ex.Abort(p)
		out.Outcome = OutcomeAborted
		out.Err = execErr.Error()
	} else {
		out.SimDuration = res.Duration()
		out.CommandsApplied = res.CommandsApplied
		out.Committed = res.Committed
	}
	out.CommandFaults = inj.CommandFaults()
	out.MessageFaults = inj.MessageFaults()
	out.Flaps = flapped

	if execErr == nil {
		flagged := out.Committed || rec.Escalations > 0 || rec.MonitorAlarms > 0
		switch {
		case flagged:
			out.Outcome = OutcomeDegraded
		default:
			// Classification derives from the monitor's timeline (every
			// transient state, checked online) plus the trace-shape checks
			// only the full trace can answer.
			tl := mon.Finish(s.Net.Now())
			out.TransientViolationTime = tl.TotalViolation()
			out.Violations = append(timelineViolations(tl),
				verifyEndState(a, s, res.Start, c.Fault != sim.FaultFlap)...)
			switch {
			case len(out.Violations) > 0:
				out.Outcome = OutcomeViolation
			case rec.Any() || out.CommandFaults+out.MessageFaults+out.Flaps > 0:
				out.Outcome = OutcomeRecovered
			default:
				out.Outcome = OutcomeClean
			}
		}
	}

	if n := len(out.Violations); n > 0 {
		span.Add(obs.CtrChaosViolations, int64(n))
	}

	h := fnv.New64a()
	fmt.Fprintf(h, "%d;%s;%d;%s;%v;%d;%d;%d;%d;%+v",
		inj.Fingerprint(), out.Outcome, out.SimDuration, out.Err,
		out.Violations, out.TransientViolationTime, flapped,
		out.CommandsApplied, out.Rounds, rec)
	out.Fingerprint = h.Sum64()
	return out, nil
}

// SweepConfig spans the scenario × fault matrix.
type SweepConfig struct {
	Topologies []string
	Faults     []sim.FaultKind
	Seeds      []uint64
	// Workers bounds how many cases run concurrently: ≤ 0 means one per
	// CPU, 1 reproduces the historical sequential sweep. Every case builds
	// its own scenario, network, injector and executor, so the matrix is
	// embarrassingly parallel; results (and their fingerprints) are merged
	// in matrix order and identical at any worker count.
	Workers int
}

// DefaultSweep returns the standard matrix: three corpus topologies ×
// five fault kinds (plus the fault-free control) × one seed, one case per
// CPU at a time.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Topologies: []string{"Abilene", "Basnet", "Heanet"},
		Faults: []sim.FaultKind{
			sim.FaultNone, sim.FaultDrop, sim.FaultDelay,
			sim.FaultDuplicate, sim.FaultPartial, sim.FaultFlap,
		},
		Seeds: []uint64{1},
	}
}

// Summary aggregates sweep results per fault kind.
type Summary struct {
	Fault string
	Runs  int

	Clean, Recovered, Degraded, Aborted, Violations int

	CommandFaults, MessageFaults, Flaps      int
	Retries, Repushes, Escalations, AcksLost int
	MonitorAlarms                            int
}

// Sweep runs the whole matrix cfg.Workers-wide, returning each case's
// result in matrix order (topology-major, then fault kind, then seed —
// independent of completion order) plus per-kind summaries (in cfg.Faults
// order). The progress callback, when non-nil, is serialized and observes
// each result as it completes; with Workers > 1 that order varies between
// runs even though the returned results never do.
func Sweep(cfg SweepConfig, progress func(CaseResult)) ([]CaseResult, []Summary, error) {
	return SweepCtx(context.Background(), cfg, progress)
}

// SweepCtx is Sweep with a context. Cancellation stops the matrix (cases
// already running finish their current solver/supervision poll and bail).
// When ctx carries an obs.Recorder, every case runs against its own forked
// recorder; after the pool drains, the forks are folded into the carried
// recorder in matrix order (obs.Recorder.Adopt), so the merged trace and
// metric dump are byte-identical at any worker count.
func SweepCtx(ctx context.Context, cfg SweepConfig, progress func(CaseResult)) ([]CaseResult, []Summary, error) {
	var cases []Case
	for _, topo := range cfg.Topologies {
		for _, kind := range cfg.Faults {
			for _, seed := range cfg.Seeds {
				cases = append(cases, Case{Topology: topo, Fault: kind, Seed: seed})
			}
		}
	}

	parent := obs.RecorderFrom(ctx)
	var recs []*obs.Recorder
	if parent != nil {
		recs = make([]*obs.Recorder, len(cases))
	}

	var mu sync.Mutex
	results, err := pool.Map(ctx, cfg.Workers, len(cases), func(wctx context.Context, i int) (CaseResult, error) {
		c := cases[i]
		if recs != nil {
			// Fork, not New: per-case recorders inherit the parent's cost
			// attribution configuration.
			recs[i] = parent.Fork()
			wctx = obs.WithRecorder(wctx, recs[i])
		}
		r, err := RunCaseCtx(wctx, c)
		if err != nil {
			return CaseResult{}, fmt.Errorf("chaos: %s/%s/seed=%d: %w", c.Topology, c.Fault, c.Seed, err)
		}
		if progress != nil {
			mu.Lock()
			progress(*r)
			mu.Unlock()
		}
		return *r, nil
	})
	// Fold the per-case recorders back in matrix order — never completion
	// order — even on error, so a partial sweep still leaves a well-formed
	// trace behind.
	for i, rec := range recs {
		if rec != nil {
			c := cases[i]
			parent.Adopt(fmt.Sprintf("case %s/%s/%d", c.Topology, c.Fault, c.Seed), rec)
		}
	}
	if err != nil {
		return nil, nil, err
	}

	// Aggregate in matrix order so summaries are as deterministic as the
	// per-case results they fold.
	idx := make(map[string]int, len(cfg.Faults))
	sums := make([]Summary, len(cfg.Faults))
	for i, k := range cfg.Faults {
		idx[k.String()] = i
		sums[i].Fault = k.String()
	}
	for i := range results {
		r := &results[i]
		sm := &sums[idx[r.Fault]]
		sm.Runs++
		switch r.Outcome {
		case OutcomeClean:
			sm.Clean++
		case OutcomeRecovered:
			sm.Recovered++
		case OutcomeDegraded:
			sm.Degraded++
		case OutcomeAborted:
			sm.Aborted++
		case OutcomeViolation:
			sm.Violations++
		}
		sm.CommandFaults += r.CommandFaults
		sm.MessageFaults += r.MessageFaults
		sm.Flaps += r.Flaps
		sm.Retries += r.Recovery.Retries
		sm.Repushes += r.Recovery.Repushes
		sm.Escalations += r.Recovery.Escalations
		sm.AcksLost += r.Recovery.AcksLost
		sm.MonitorAlarms += r.Recovery.MonitorAlarms
	}
	return results, sums, nil
}
