package chaos_test

import (
	"reflect"
	"testing"

	"chameleon/internal/chaos"
	"chameleon/internal/sim"
)

// TestSweepNoSilentViolations runs the full default matrix (3 topologies ×
// 5 fault kinds + control) and asserts the acceptance criterion: every run
// either upholds the §3 invariants or visibly degrades — zero silent
// violations.
func TestSweepNoSilentViolations(t *testing.T) {
	results, sums, err := chaos.Sweep(chaos.DefaultSweep(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3*6 {
		t.Fatalf("got %d results, want 18", len(results))
	}
	for _, r := range results {
		if r.Outcome == chaos.OutcomeViolation {
			t.Errorf("SILENT VIOLATION: %s/%s seed=%d: %v", r.Topology, r.Fault, r.Seed, r.Violations)
		}
		t.Logf("%-12s %-10s → %-10s faults=%d msg=%d flaps=%d retries=%d acksLost=%d",
			r.Topology, r.Fault, r.Outcome, r.CommandFaults, r.MessageFaults,
			r.Flaps, r.Recovery.Retries, r.Recovery.AcksLost)
	}
	// The sweep must actually exercise the fault layer and the healing
	// machinery, not vacuously pass.
	var faults, healed int
	for _, sm := range sums {
		faults += sm.CommandFaults + sm.MessageFaults + sm.Flaps
		healed += sm.Retries + sm.AcksLost
	}
	if faults == 0 {
		t.Error("sweep injected no faults at all")
	}
	if healed == 0 {
		t.Error("sweep triggered no self-healing (retries or readback recoveries)")
	}
	for _, sm := range sums {
		if sm.Fault == sim.FaultNone.String() && sm.Clean != sm.Runs {
			t.Errorf("control runs not all clean: %+v", sm)
		}
	}
}

// TestRunCaseReproducible asserts the determinism criterion: the same Case
// run twice yields byte-for-byte identical results — identical fault
// schedule (fingerprint) and identical outcome.
func TestRunCaseReproducible(t *testing.T) {
	kinds := []sim.FaultKind{sim.FaultDrop, sim.FaultDelay, sim.FaultPartial, sim.FaultFlap}
	for _, kind := range kinds {
		c := chaos.Case{Topology: "Abilene", Fault: kind, Seed: 3}
		r1, err := chaos.RunCase(c)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		r2, err := chaos.RunCase(c)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if r1.Fingerprint != r2.Fingerprint {
			t.Errorf("%s: fingerprints differ: %x vs %x", kind, r1.Fingerprint, r2.Fingerprint)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: results differ:\n  %+v\n  %+v", kind, r1, r2)
		}
	}
	// Different seeds must produce different schedules (otherwise the
	// injector ignores its seed).
	a, err := chaos.RunCase(chaos.Case{Topology: "Abilene", Fault: sim.FaultDrop, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := chaos.RunCase(chaos.Case{Topology: "Abilene", Fault: sim.FaultDrop, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Error("different seeds produced identical fault schedules")
	}
}

// TestControlRunClean: with no faults configured the run must be
// classified clean, with zero faults and zero recovery activity.
func TestControlRunClean(t *testing.T) {
	r, err := chaos.RunCase(chaos.Case{Topology: "RunningExample", Fault: sim.FaultNone, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != chaos.OutcomeClean {
		t.Errorf("outcome = %s, want clean (err=%q violations=%v)", r.Outcome, r.Err, r.Violations)
	}
	if r.CommandFaults+r.MessageFaults+r.Flaps != 0 {
		t.Errorf("control run injected faults: %+v", r)
	}
	if r.Recovery.Any() {
		t.Errorf("control run recorded recovery activity: %+v", r.Recovery)
	}
}

// TestInjectorDeterminism exercises the injector in isolation: same seed →
// same decisions, and the per-command fault cap holds.
func TestInjectorDeterminism(t *testing.T) {
	mk := func(seed uint64) *chaos.Injector {
		return chaos.NewInjector(chaos.InjectorConfig{
			Seed:             seed,
			CommandRate:      0.5,
			CommandKinds:     []sim.FaultKind{sim.FaultDrop, sim.FaultPartial},
			MaxAttemptFaults: 2,
		})
	}
	in1, in2 := mk(9), mk(9)
	for i := 0; i < 50; i++ {
		f1 := in1.CommandFault(1, "cmd", i)
		f2 := in2.CommandFault(1, "cmd", i)
		if f1 != f2 {
			t.Fatalf("call %d: %+v vs %+v", i, f1, f2)
		}
	}
	if in1.Fingerprint() != in2.Fingerprint() {
		t.Error("same seed, different fingerprints")
	}
	if got := in1.CommandFaults(); got != 2 {
		t.Errorf("per-command cap: %d faults on one command, want 2", got)
	}
}
