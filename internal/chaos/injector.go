// Package chaos builds reproducible fault schedules and sweeps the
// Chameleon pipeline across scenario × fault-kind matrices, asserting that
// the §3 invariants (loop-freedom of every intermediate state, at most one
// next-hop change per node, no transient eBGP export beyond the steady
// bound) hold under every injected fault — or that the controller visibly
// degrades (alarm, commit, abort). A silent violation is the one outcome
// that must never occur.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"

	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// InjectorConfig parameterizes a seeded fault injector.
type InjectorConfig struct {
	// Seed drives every fault decision; the same seed over the same
	// (deterministic) simulation produces the identical fault schedule.
	Seed uint64
	// CommandRate is the probability that a command application attempt is
	// faulted with one of CommandKinds.
	CommandRate float64
	// CommandKinds are the fault kinds drawn for faulted commands.
	CommandKinds []sim.FaultKind
	// MessageRate is the probability that a BGP message delivery is
	// faulted with one of MessageKinds (delay/duplicate only).
	MessageRate float64
	// MessageKinds are the fault kinds drawn for faulted messages.
	MessageKinds []sim.FaultKind
	// DelayFactor multiplies latencies for delay faults (default 3).
	DelayFactor float64
	// MaxAttemptFaults caps how many application attempts of the same
	// command may be faulted, so a self-healing controller's retries
	// eventually land (0 means unlimited — the escalation path).
	MaxAttemptFaults int
	// MaxCommandFaults caps the total number of faulted command attempts
	// (0 means unlimited).
	MaxCommandFaults int
}

// Decision records one non-trivial injector verdict, for reproducibility
// fingerprints and reports.
type Decision struct {
	Target  string
	Attempt int
	Kind    sim.FaultKind
}

// Injector is a seeded, deterministic sim.FaultInjector. Its decisions are
// a pure function of the seed and the consultation order, which the
// discrete-event simulation makes deterministic.
type Injector struct {
	cfg       InjectorConfig
	rng       *rand.Rand
	perCmd    map[string]int
	cmdFaults int
	msgFaults int
	consulted int
	decisions []Decision
}

// NewInjector builds an injector from cfg, applying defaults.
func NewInjector(cfg InjectorConfig) *Injector {
	if cfg.DelayFactor <= 1 {
		cfg.DelayFactor = 3
	}
	return &Injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		perCmd: make(map[string]int),
	}
}

// CommandFault implements sim.FaultInjector.
func (in *Injector) CommandFault(node topology.NodeID, description string, attempt int) sim.CommandFault {
	in.consulted++
	if len(in.cfg.CommandKinds) == 0 || in.cfg.CommandRate <= 0 {
		return sim.CommandFault{}
	}
	if in.rng.Float64() >= in.cfg.CommandRate {
		return sim.CommandFault{}
	}
	if in.cfg.MaxAttemptFaults > 0 && in.perCmd[description] >= in.cfg.MaxAttemptFaults {
		return sim.CommandFault{}
	}
	if in.cfg.MaxCommandFaults > 0 && in.cmdFaults >= in.cfg.MaxCommandFaults {
		return sim.CommandFault{}
	}
	kind := in.cfg.CommandKinds[in.rng.IntN(len(in.cfg.CommandKinds))]
	in.perCmd[description]++
	in.cmdFaults++
	in.decisions = append(in.decisions, Decision{Target: description, Attempt: attempt, Kind: kind})
	return sim.CommandFault{Kind: kind, DelayFactor: in.cfg.DelayFactor}
}

// MessageFault implements sim.FaultInjector.
func (in *Injector) MessageFault(from, to topology.NodeID) sim.MessageFault {
	in.consulted++
	if len(in.cfg.MessageKinds) == 0 || in.cfg.MessageRate <= 0 {
		return sim.MessageFault{}
	}
	if in.rng.Float64() >= in.cfg.MessageRate {
		return sim.MessageFault{}
	}
	kind := in.cfg.MessageKinds[in.rng.IntN(len(in.cfg.MessageKinds))]
	in.msgFaults++
	in.decisions = append(in.decisions, Decision{
		Target: fmt.Sprintf("msg n%d→n%d", int(from), int(to)),
		Kind:   kind,
	})
	return sim.MessageFault{Kind: kind, DelayFactor: in.cfg.DelayFactor}
}

// CommandFaults returns the number of faulted command attempts.
func (in *Injector) CommandFaults() int { return in.cmdFaults }

// MessageFaults returns the number of faulted message deliveries.
func (in *Injector) MessageFaults() int { return in.msgFaults }

// Consulted returns how many times the injector was consulted.
func (in *Injector) Consulted() int { return in.consulted }

// Decisions returns the recorded fault schedule (faulted verdicts only).
func (in *Injector) Decisions() []Decision { return in.decisions }

// Fingerprint hashes the complete fault schedule (consultation count plus
// every faulted verdict): two runs with identical fingerprints injected the
// identical faults at the identical points of the simulation.
func (in *Injector) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "consulted=%d;", in.consulted)
	for _, d := range in.decisions {
		fmt.Fprintf(h, "%s@%d=%s;", d.Target, d.Attempt, d.Kind)
	}
	return h.Sum64()
}
