package monitor

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/fwd"
	"chameleon/internal/obs"
	"chameleon/internal/scenario"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// noDrop fails whenever any node drops, blaming the dropping nodes.
func noDrop() Invariant {
	return Invariant{
		Name: "no-drop",
		Check: func(s fwd.State) (bool, []topology.NodeID) {
			var bad []topology.NodeID
			for n, nh := range s {
				if nh == fwd.Drop {
					bad = append(bad, topology.NodeID(n))
				}
			}
			return len(bad) == 0, bad
		},
	}
}

func TestObserveOpenExtendClose(t *testing.T) {
	const pfx = bgp.Prefix(1)
	m := New(Config{Name: "t", Invariants: []Invariant{noDrop()}})
	m.SetPhase("setup")
	m.Observe(0, pfx, fwd.State{fwd.External, fwd.External})
	m.SetPhase("round 1")
	m.Observe(1*time.Second, pfx, fwd.State{fwd.Drop, fwd.External}) // opens
	m.Observe(2*time.Second, pfx, fwd.State{fwd.Drop, fwd.Drop})     // extends + widens
	m.Observe(3*time.Second, pfx, fwd.State{fwd.External, fwd.External})
	m.SetPhase("cleanup")
	m.Observe(4*time.Second, pfx, fwd.State{fwd.External, fwd.Drop}) // opens, never recovers
	if got := m.ViolationCount(); got != 2 {
		t.Errorf("ViolationCount = %d, want 2", got)
	}
	tl := m.Finish(5 * time.Second)
	if len(tl.Violations) != 2 {
		t.Fatalf("got %d violations, want 2: %+v", len(tl.Violations), tl.Violations)
	}
	v := tl.Violations[0]
	if v.Start != 1*time.Second || v.End != 3*time.Second || v.Open {
		t.Errorf("first violation = [%v, %v) open=%v, want [1s, 3s) closed", v.Start, v.End, v.Open)
	}
	if v.Phase != "round 1" || v.StartTick != 2 {
		t.Errorf("first violation phase=%q tick=%d, want round 1 / 2", v.Phase, v.StartTick)
	}
	if want := []topology.NodeID{0, 1}; len(v.Nodes) != 2 || v.Nodes[0] != want[0] || v.Nodes[1] != want[1] {
		t.Errorf("blast radius = %v, want %v (union over the interval)", v.Nodes, want)
	}
	u := tl.Violations[1]
	if u.Start != 4*time.Second || u.End != 5*time.Second || !u.Open {
		t.Errorf("second violation = [%v, %v) open=%v, want [4s, 5s) open", u.Start, u.End, u.Open)
	}
	if u.Phase != "cleanup" {
		t.Errorf("second violation phase = %q, want cleanup", u.Phase)
	}
	if tl.StatesChecked != 5 || tl.End != 5*time.Second {
		t.Errorf("summary = %d states / end %v, want 5 / 5s", tl.StatesChecked, tl.End)
	}
	if got := tl.TotalViolation(); got != 3*time.Second {
		t.Errorf("TotalViolation = %v, want 3s", got)
	}
	// Finish is idempotent.
	if tl2 := m.Finish(99 * time.Second); len(tl2.Violations) != 2 || tl2.End != 5*time.Second {
		t.Error("second Finish must be a no-op")
	}
}

func TestObservePerPrefixIndependence(t *testing.T) {
	m := New(Config{Name: "t", Invariants: []Invariant{noDrop()}})
	m.Observe(0, 1, fwd.State{fwd.Drop})
	m.Observe(0, 2, fwd.State{fwd.External})
	m.Observe(1*time.Second, 1, fwd.State{fwd.External}) // closes prefix 1
	m.Observe(2*time.Second, 2, fwd.State{fwd.Drop})     // opens prefix 2
	tl := m.Finish(3 * time.Second)
	if len(tl.Violations) != 2 {
		t.Fatalf("got %d violations, want 2 (one per prefix)", len(tl.Violations))
	}
	if tl.Violations[0].Prefix != 1 || tl.Violations[1].Prefix != 2 {
		t.Errorf("prefixes = %d, %d, want 1, 2", tl.Violations[0].Prefix, tl.Violations[1].Prefix)
	}
}

func TestFinishFlushesCounters(t *testing.T) {
	rec := obs.New()
	m := New(Config{Name: "t", Invariants: []Invariant{noDrop()}, Recorder: rec})
	m.Observe(0, 1, fwd.State{fwd.Drop})
	m.Observe(1*time.Second, 1, fwd.State{fwd.External})
	m.Finish(2 * time.Second)
	if got := rec.Counter(obs.CtrMonitorStatesChecked); got != 2 {
		t.Errorf("%s = %d, want 2", obs.CtrMonitorStatesChecked, got)
	}
	if got := rec.Counter(obs.CtrMonitorViolations); got != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrMonitorViolations, got)
	}
	if got := rec.Counter(obs.CtrMonitorViolationTime); got != int64(time.Second) {
		t.Errorf("%s = %d, want 1s", obs.CtrMonitorViolationTime, got)
	}
	if got := rec.Counter("monitor_violations_no-drop"); got != 1 {
		t.Errorf("per-invariant counter = %d, want 1", got)
	}
}

func TestTrackAfterObservePanics(t *testing.T) {
	m := New(Config{Name: "t"})
	m.Observe(0, 1, fwd.State{fwd.External})
	defer func() {
		if recover() == nil {
			t.Error("Track after Observe must panic")
		}
	}()
	m.Track(noDrop())
}

func TestTotalViolationUnion(t *testing.T) {
	tl := &Timeline{Violations: []Violation{
		{Invariant: "a", Start: 1 * time.Second, End: 3 * time.Second},
		{Invariant: "b", Start: 2 * time.Second, End: 4 * time.Second},
		{Invariant: "a", Start: 10 * time.Second, End: 11 * time.Second},
		{Invariant: "b", Start: 10 * time.Second, End: 10 * time.Second}, // empty
	}}
	if got := tl.TotalViolation(); got != 4*time.Second {
		t.Errorf("TotalViolation = %v, want 4s (union of [1,4) and [10,11))", got)
	}
	if got := tl.ByInvariant("a"); got != 3*time.Second {
		t.Errorf("ByInvariant(a) = %v, want 3s", got)
	}
	if got := tl.ByInvariant("missing"); got != 0 {
		t.Errorf("ByInvariant(missing) = %v, want 0", got)
	}
}

func TestGateQuiescence(t *testing.T) {
	s := scenario.RunningExample()
	net := s.Net
	m := New(Config{Name: "gate"})
	defer m.Bind(net)()
	gate := m.Gate(2 * time.Second)
	if !gate(net) {
		t.Fatal("a converged network must pass the gate")
	}
	// A pending event inside the quiet window blocks the gate: forwarding
	// could still change before the window closes.
	t0 := net.Now()
	net.ScheduleAt(t0+1*time.Second, func(*sim.Network) {})
	if gate(net) {
		t.Error("gate must hold while an event is pending inside the window")
	}
	// An event beyond the window cannot disturb it: the gate opens early
	// instead of idling until the far-future event.
	net.ScheduleAt(t0+time.Hour, func(*sim.Network) {})
	for net.Now() < t0+1*time.Second {
		if !net.Step() {
			t.Fatal("queue drained unexpectedly")
		}
	}
	if !gate(net) {
		t.Error("gate must open when only events beyond the quiet window remain")
	}
}

func TestBindObservesSnapshots(t *testing.T) {
	s := scenario.RunningExample()
	m := New(Config{Name: "bind", Invariants: []Invariant{noDrop()}})
	unbind := m.Bind(s.Net)
	s.Net.RecordInitialState(s.Prefix)
	unbind()
	s.Net.RecordInitialState(s.Prefix) // hook detached: not observed
	tl := m.Finish(s.Net.Now())
	if tl.StatesChecked != 1 {
		t.Errorf("StatesChecked = %d, want 1 (one snapshot while bound)", tl.StatesChecked)
	}
}

func TestWriteJSONLByteIdenticalAndValid(t *testing.T) {
	tl := &Timeline{
		Name:          "run",
		StatesChecked: 7,
		End:           5 * time.Second,
		Violations: []Violation{
			{Invariant: "reach", Prefix: 1, Start: 1 * time.Second, End: 2 * time.Second,
				StartTick: 3, Phase: "round 1", Nodes: []topology.NodeID{0, 2},
				Cause: RootCause{Kind: "command", Label: "withdraw old route",
					Node: 4, Phase: "round 1", Seq: 2, Hops: 3, Latency: 250 * time.Millisecond}},
			{Invariant: "loop-free", Prefix: 1, Start: 4 * time.Second, End: 5 * time.Second,
				StartTick: 6, Phase: "cleanup", Nodes: []topology.NodeID{1}, Open: true,
				Cause: RootCause{Kind: "init"}},
		},
	}
	var a, b bytes.Buffer
	if err := tl.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteJSONL must be byte-identical across calls")
	}
	recs, err := ValidateJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("emitted timeline does not validate: %v", err)
	}
	if len(recs) != 3 {
		t.Errorf("got %d records, want 3 (summary + 2 violations)", len(recs))
	}
	if recs[0].Type != "timeline" || recs[0].Violations == nil || *recs[0].Violations != 2 {
		t.Errorf("summary record malformed: %+v", recs[0])
	}
	// Two timelines may share one stream.
	tl2 := &Timeline{Name: "other"}
	if err := tl2.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSONL(bytes.NewReader(a.Bytes())); err != nil {
		t.Errorf("two-timeline stream does not validate: %v", err)
	}
}

func TestValidateJSONLRejectsMalformed(t *testing.T) {
	valid := func() string {
		tl := &Timeline{Name: "run", Violations: []Violation{
			{Invariant: "reach", Start: time.Second, End: 2 * time.Second, Nodes: []topology.NodeID{0, 1},
				Cause: RootCause{Kind: "command", Label: "push route-map", Seq: 1}},
		}}
		var b bytes.Buffer
		if err := tl.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}()
	cases := map[string]string{
		"not json":             "nope\n",
		"unknown type":         `{"type":"span","name":"x"}` + "\n",
		"summary without name": `{"type":"timeline","violations":0,"violation_ns":0}` + "\n",
		"violation first":      strings.Join([]string{line(valid, 1), line(valid, 0)}, "\n") + "\n",
		"duplicate timeline":   valid + valid,
		"missing violation":    line(valid, 0) + "\n",
		"bad seq":              strings.Replace(valid, `"seq":1`, `"seq":7`, 1),
		"bad duration":         strings.Replace(valid, `"duration_ns":1000000000`, `"duration_ns":5`, 1),
		"unsorted nodes":       strings.Replace(valid, `"nodes":[0,1]`, `"nodes":[1,0]`, 1),
		"missing cause kind":   strings.Replace(valid, `"cause_kind":"command",`, ``, 1),
		"unknown cause kind":   strings.Replace(valid, `"cause_kind":"command"`, `"cause_kind":"ghost"`, 1),
		"rooted without label": strings.Replace(valid, `"cause":"push route-map",`, ``, 1),
		"negative blame":       strings.Replace(valid, `"blame_ns":0`, `"blame_ns":-7`, 1),
	}
	for name, in := range cases {
		if _, err := ValidateJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
	if _, err := ValidateJSONL(strings.NewReader(valid)); err != nil {
		t.Errorf("control: valid input rejected: %v", err)
	}
}

// line returns the i-th line of a newline-joined string.
func line(s string, i int) string { return strings.Split(strings.TrimSpace(s), "\n")[i] }
