package monitor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/topology"
)

// RootCause attributes a violation to the command or external event whose
// BGP churn flipped the offending forwarding entry (the simulator's causal
// provenance layer, sim/cause.go). Kind is "command", "event" or — for
// state with no registered root, like initial bring-up convergence —
// "init"; every violation carries a non-empty Kind.
type RootCause struct {
	Kind  string
	Label string          // command description or event name
	Node  topology.NodeID // command's target router
	Phase string          // phase active when the cause was registered
	Seq   uint64          // cause registration ordinal
	// Hops is the BGP propagation depth at violation onset: how many
	// message hops separate the root event from the state change that
	// opened the violation.
	Hops int
	// Latency is the blame latency: simulated time from the root cause
	// firing (command applied, event executed) to the violation's onset.
	Latency time.Duration
}

// Violation is one maximal interval during which one invariant was
// violated for one prefix: [Start, End) in simulated time. Nodes is the
// union of all routers affected at any point of the interval (the blast
// radius); Phase is the execution phase active at onset; Cause is the
// causal attribution of the snapshot that opened the interval.
type Violation struct {
	Invariant string
	Prefix    bgp.Prefix
	Start     time.Duration
	End       time.Duration
	StartTick uint64
	Phase     string
	Nodes     []topology.NodeID
	Cause     RootCause
	// Open marks a violation that never recovered before the monitor
	// finished (its End is the finish time, not a recovery).
	Open bool
}

// Duration returns the length of the violation interval.
func (v *Violation) Duration() time.Duration { return v.End - v.Start }

// Timeline is the complete output of one monitored run.
type Timeline struct {
	Name          string
	StatesChecked int
	End           time.Duration
	// Violations are ordered by close time (event order), which is
	// deterministic for a deterministic simulation.
	Violations []Violation
}

// TotalViolation returns the measure of the union of all violation
// intervals: the simulated time during which at least one invariant was
// violated for at least one prefix — the paper's transient violation time
// (Fig. 1 / Fig. 9).
func (t *Timeline) TotalViolation() time.Duration {
	if len(t.Violations) == 0 {
		return 0
	}
	type iv struct{ s, e time.Duration }
	ivs := make([]iv, 0, len(t.Violations))
	for _, v := range t.Violations {
		if v.End > v.Start {
			ivs = append(ivs, iv{v.Start, v.End})
		}
	}
	slices.SortFunc(ivs, func(a, b iv) int {
		if a.s != b.s {
			return int(a.s - b.s)
		}
		return int(a.e - b.e)
	})
	var total, end time.Duration
	start := time.Duration(-1)
	for _, i := range ivs {
		if start < 0 || i.s > end {
			if start >= 0 {
				total += end - start
			}
			start, end = i.s, i.e
		} else if i.e > end {
			end = i.e
		}
	}
	if start >= 0 {
		total += end - start
	}
	return total
}

// ByInvariant returns the union violation time restricted to one invariant
// name.
func (t *Timeline) ByInvariant(name string) time.Duration {
	sub := Timeline{}
	for _, v := range t.Violations {
		if v.Invariant == name {
			sub.Violations = append(sub.Violations, v)
		}
	}
	return sub.TotalViolation()
}

// --- JSONL export ---------------------------------------------------------

// Record is one line of a timeline JSONL artifact. A timeline serializes
// as one "timeline" summary record followed by one "violation" record per
// violation, in order. All times are integer nanoseconds of simulated time
// — no wall-clock field exists, by design, so artifacts are byte-identical
// across re-runs.
type Record struct {
	Type      string `json:"type"` // "timeline" | "violation"
	Name      string `json:"name"`
	Seq       int    `json:"seq,omitempty"`
	Invariant string `json:"invariant,omitempty"`
	Prefix    int    `json:"prefix,omitempty"`
	StartNS   int64  `json:"start_ns,omitempty"`
	EndNS     int64  `json:"end_ns,omitempty"`
	DurNS     int64  `json:"duration_ns,omitempty"`
	Tick      uint64 `json:"tick,omitempty"`
	Phase     string `json:"phase,omitempty"`
	Nodes     []int  `json:"nodes,omitempty"`
	Open      bool   `json:"open,omitempty"`

	// Root-cause attribution ("violation" records only). CauseKind is
	// always present on violations ("command" | "event" | "init"); the
	// remaining fields are pointers so zero values (node 0, seq 0, hop
	// depth 0, zero blame latency) survive while summary records omit
	// them. CauseNode and CauseSeq appear only on rooted causes.
	CauseKind  string  `json:"cause_kind,omitempty"`
	Cause      string  `json:"cause,omitempty"`
	CauseNode  *int    `json:"cause_node,omitempty"`
	CausePhase string  `json:"cause_phase,omitempty"`
	CauseSeq   *uint64 `json:"cause_seq,omitempty"`
	HopDepth   *int    `json:"hop_depth,omitempty"`
	BlameNS    *int64  `json:"blame_ns,omitempty"`

	// Summary fields ("timeline" records only). Violations and ViolationNS
	// are pointers so a summary always carries them (even when zero) while
	// violation records omit them.
	StatesChecked int    `json:"states_checked,omitempty"`
	Violations    *int   `json:"violations,omitempty"`
	ViolationNS   *int64 `json:"violation_ns,omitempty"`
	EndOfRunNS    int64  `json:"end_of_run_ns,omitempty"`
}

// WriteJSONL appends the timeline to w: the summary record, then the
// violation records. Multiple timelines may share one file.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	nv, vns := len(t.Violations), int64(t.TotalViolation())
	if err := enc.Encode(Record{
		Type:          "timeline",
		Name:          t.Name,
		StatesChecked: t.StatesChecked,
		Violations:    &nv,
		ViolationNS:   &vns,
		EndOfRunNS:    int64(t.End),
	}); err != nil {
		return err
	}
	for i, v := range t.Violations {
		if err := enc.Encode(violationRecord(t.Name, i+1, &v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// violationRecord renders one violation as its JSONL record; the live
// event stream publishes the same shape.
func violationRecord(name string, seq int, v *Violation) Record {
	nodes := make([]int, len(v.Nodes))
	for j, n := range v.Nodes {
		nodes[j] = int(n)
	}
	rec := Record{
		Type:      "violation",
		Name:      name,
		Seq:       seq,
		Invariant: v.Invariant,
		Prefix:    int(v.Prefix),
		StartNS:   int64(v.Start),
		EndNS:     int64(v.End),
		DurNS:     int64(v.Duration()),
		Tick:      v.StartTick,
		Phase:     v.Phase,
		Nodes:     nodes,
		Open:      v.Open,
		CauseKind: v.Cause.Kind,
		Cause:     v.Cause.Label,
	}
	hops, blame := v.Cause.Hops, int64(v.Cause.Latency)
	rec.HopDepth, rec.BlameNS = &hops, &blame
	if v.Cause.Kind != "" && v.Cause.Kind != "init" {
		node, seq := int(v.Cause.Node), v.Cause.Seq
		rec.CauseNode, rec.CauseSeq = &node, &seq
		rec.CausePhase = v.Cause.Phase
	}
	return rec
}

// WriteRecords re-emits parsed timeline records in the canonical JSONL
// form. WriteJSONL → ValidateJSONL → WriteRecords reproduces the original
// bytes exactly (the round-trip tests pin this), which is what lets the
// run-bundle differ treat timeline artifacts as canonical: any byte
// difference between two artifacts is a structural difference between the
// runs, never a serialization accident.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ValidateJSONL structurally checks a timeline artifact: every line parses
// as a Record, violation records follow their timeline's summary record
// with 1-based consecutive seq numbers, intervals are well-formed
// (end ≥ start, duration = end − start, sorted node lists), and each
// summary's violation count matches the records that follow. It returns
// the parsed records on success.
func ValidateJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	counts := make(map[string]int)    // name → violations seen
	announced := make(map[string]int) // name → violations promised
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("timeline line %d: %w", line, err)
		}
		switch rec.Type {
		case "timeline":
			if rec.Name == "" {
				return nil, fmt.Errorf("timeline line %d: summary without name", line)
			}
			if _, dup := announced[rec.Name]; dup {
				return nil, fmt.Errorf("timeline line %d: duplicate timeline %q", line, rec.Name)
			}
			if rec.Violations == nil || rec.ViolationNS == nil {
				return nil, fmt.Errorf("timeline line %d: summary missing violations/violation_ns", line)
			}
			announced[rec.Name] = *rec.Violations
		case "violation":
			promised, ok := announced[rec.Name]
			if !ok {
				return nil, fmt.Errorf("timeline line %d: violation for unannounced timeline %q", line, rec.Name)
			}
			counts[rec.Name]++
			if counts[rec.Name] > promised {
				return nil, fmt.Errorf("timeline line %d: more violations than %q announced (%d)", line, rec.Name, promised)
			}
			if rec.Seq != counts[rec.Name] {
				return nil, fmt.Errorf("timeline line %d: seq %d, want %d", line, rec.Seq, counts[rec.Name])
			}
			if rec.Invariant == "" {
				return nil, fmt.Errorf("timeline line %d: violation without invariant", line)
			}
			if rec.EndNS < rec.StartNS || rec.StartNS < 0 {
				return nil, fmt.Errorf("timeline line %d: bad interval [%d, %d)", line, rec.StartNS, rec.EndNS)
			}
			if rec.DurNS != rec.EndNS-rec.StartNS {
				return nil, fmt.Errorf("timeline line %d: duration %d ≠ end−start", line, rec.DurNS)
			}
			if !slices.IsSorted(rec.Nodes) {
				return nil, fmt.Errorf("timeline line %d: unsorted blast radius", line)
			}
			switch rec.CauseKind {
			case "init":
			case "command", "event":
				if rec.Cause == "" {
					return nil, fmt.Errorf("timeline line %d: %s cause without label", line, rec.CauseKind)
				}
				if rec.CauseSeq == nil {
					return nil, fmt.Errorf("timeline line %d: rooted cause without cause_seq", line)
				}
			case "":
				return nil, fmt.Errorf("timeline line %d: violation without cause_kind", line)
			default:
				return nil, fmt.Errorf("timeline line %d: unknown cause_kind %q", line, rec.CauseKind)
			}
			if rec.HopDepth == nil || rec.BlameNS == nil {
				return nil, fmt.Errorf("timeline line %d: violation without hop_depth/blame_ns", line)
			}
			if *rec.BlameNS < 0 {
				return nil, fmt.Errorf("timeline line %d: negative blame latency %d", line, *rec.BlameNS)
			}
		default:
			return nil, fmt.Errorf("timeline line %d: unknown record type %q", line, rec.Type)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, want := range announced {
		if counts[name] != want {
			return nil, fmt.Errorf("timeline %q: %d violation records, summary announced %d", name, counts[name], want)
		}
	}
	return recs, nil
}
