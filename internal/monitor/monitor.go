// Package monitor implements the online transient-state monitor: it
// subscribes to the simulator's per-prefix forwarding-state snapshots and
// checks every transient state against the forwarding invariants the plan
// promised to preserve (reach / waypoint / loop-freedom, §3). Where the
// analyzer proves invariants at planning time and the chaos harness checks
// traces after the fact, the monitor closes the loop at execution time:
// each snapshot becomes a checked, timestamped fact, violations become
// timeline intervals with onset, duration, blast radius and per-round
// attribution, and the observed quiescence of the forwarding plane gates
// round advancement in the runtime executor (§8's runtime-monitoring
// posture).
//
// Determinism contract: the monitor is driven synchronously from the
// simulator's event loop (snapshots arrive in event order, prefixes sorted
// within an event), invariants are checked in configuration order, and no
// wall-clock time is ever recorded — a timeline is a pure function of the
// scenario seed, so re-runs and worker-count changes reproduce it
// byte-identically.
package monitor

import (
	"slices"
	"time"

	"chameleon/internal/bgp"
	"chameleon/internal/fwd"
	"chameleon/internal/obs"
	"chameleon/internal/sim"
	"chameleon/internal/spec"
	"chameleon/internal/topology"
)

// Invariant is one online-checkable forwarding property. Check returns
// whether the state satisfies it and, when it does not, the affected
// routers (the blast radius), in ascending node-ID order.
type Invariant struct {
	Name  string
	Check func(fwd.State) (ok bool, affected []topology.NodeID)
}

// ReachAll is the reachability invariant ∧_n reach(n) over the internal
// nodes of g: every router forwards traffic to the external destination.
func ReachAll(g *topology.Graph) Invariant {
	nodes := slices.Clone(g.Internal())
	slices.Sort(nodes)
	return Invariant{
		Name: "reach",
		Check: func(s fwd.State) (bool, []topology.NodeID) {
			var bad []topology.NodeID
			for _, n := range nodes {
				if !s.Reach(n) {
					bad = append(bad, n)
				}
			}
			return len(bad) == 0, bad
		},
	}
}

// LoopFree is the loop-freedom invariant: no router's forwarding path
// enters a cycle. The blast radius is every node whose traffic loops.
func LoopFree() Invariant {
	return Invariant{
		Name: "loop-free",
		Check: func(s fwd.State) (bool, []topology.NodeID) {
			nodes := s.LoopNodes()
			return len(nodes) == 0, nodes
		},
	}
}

// WaypointEither is the transient projection of the Eq. 4 waypoint
// specification wp(n, e1) U G wp(n, en): every source that reaches the
// destination must traverse its old or its new egress — never a third
// exit. pairs maps each constrained source to its (old, new) egress pair;
// sources that drop are not blamed here (that is ReachAll's job), avoiding
// double-counted blast radii.
func WaypointEither(pairs map[topology.NodeID][2]topology.NodeID) Invariant {
	srcs := make([]topology.NodeID, 0, len(pairs))
	for n := range pairs {
		srcs = append(srcs, n)
	}
	slices.Sort(srcs)
	return Invariant{
		Name: "waypoint",
		Check: func(s fwd.State) (bool, []topology.NodeID) {
			var bad []topology.NodeID
			for _, n := range srcs {
				if !s.Reach(n) {
					continue
				}
				p := pairs[n]
				if !s.Waypoint(n, p[0]) && !s.Waypoint(n, p[1]) {
					bad = append(bad, n)
				}
			}
			return len(bad) == 0, bad
		},
	}
}

// FromSpec wraps a compiled specification as an invariant using its
// steady-state projection (spec.EvalState): the propositional content of
// the spec is checked against each transient state, and the blast radius
// is the source nodes of its failing atoms.
func FromSpec(name string, sp *spec.Spec) Invariant {
	return Invariant{
		Name: name,
		Check: func(s fwd.State) (bool, []topology.NodeID) {
			if sp.EvalState(s) {
				return true, nil
			}
			var bad []topology.NodeID
			for _, e := range sp.FailingAtoms(s) {
				bad = append(bad, e.Node)
			}
			slices.Sort(bad)
			return false, slices.Compact(bad)
		},
	}
}

// Config configures a Monitor.
type Config struct {
	// Name labels the monitored run in exported timelines (e.g.
	// "chameleon", "snowcap").
	Name string
	// Invariants are checked against every snapshot, in order.
	Invariants []Invariant
	// Recorder, when set, receives the monitor counters at Finish:
	// monitor_states_checked, monitor_violations, monitor_violation_time_ns
	// and one monitor_violations_<invariant> counter per violated
	// invariant — plus, per closed violation, one sample in each of the
	// blame-latency, violation-duration and hop-depth histograms. Nil
	// disables recording.
	Recorder *obs.Recorder
	// Stream, when set, receives a live record per violation: one
	// "violation_open" at onset and one "violation" (the final JSONL
	// shape) at close. Observation-only; timelines are identical with or
	// without it.
	Stream *obs.Stream
}

// Monitor checks forwarding snapshots online and accumulates a violation
// timeline. It is driven from the simulator's event loop and is not safe
// for concurrent use.
type Monitor struct {
	cfg   Config
	phase string
	tick  uint64

	statesChecked int
	lastSeen      map[bgp.Prefix]fwd.State
	lastChange    time.Duration
	now           time.Duration

	open     []*Violation // one per currently-violated (invariant, prefix)
	openInv  []int        // parallel: invariant index of open[i]
	timeline Timeline
	finished bool
}

// New returns a monitor for the given configuration.
func New(cfg Config) *Monitor {
	return &Monitor{
		cfg:      cfg,
		lastSeen: make(map[bgp.Prefix]fwd.State),
		timeline: Timeline{Name: cfg.Name},
	}
}

// Track appends an invariant to the monitored set. It must be called
// before the first snapshot is observed (e.g. at plan time, to track the
// compiled specification alongside the structural invariants).
func (m *Monitor) Track(inv Invariant) {
	if m.statesChecked > 0 {
		panic("monitor: Track after observation started")
	}
	m.cfg.Invariants = append(m.cfg.Invariants, inv)
}

// SetPhase labels subsequently-observed violations with the named execution
// phase; wire it to runtime.Options.PhaseObserver for per-round
// attribution.
func (m *Monitor) SetPhase(name string) { m.phase = name }

// Observe checks one forwarding-state snapshot with no provenance (the
// root cause comes out as "init"). Kept for direct callers; the simulator
// hook is ObserveProvenance.
func (m *Monitor) Observe(at time.Duration, prefix bgp.Prefix, st fwd.State) {
	m.ObserveProvenance(at, prefix, st, sim.Provenance{})
}

// ObserveProvenance checks one forwarding-state snapshot, attributing any
// violation it opens to the snapshot's causal root. Its signature matches
// sim.SnapshotHook, so it can be installed directly (Bind does).
func (m *Monitor) ObserveProvenance(at time.Duration, prefix bgp.Prefix, st fwd.State, prov sim.Provenance) {
	m.tick++
	m.statesChecked++
	m.now = at
	if prev, ok := m.lastSeen[prefix]; !ok || !st.Equal(prev) {
		m.lastChange = at
		m.lastSeen[prefix] = st
	}
	for idx, inv := range m.cfg.Invariants {
		ok, affected := inv.Check(st)
		v := m.findOpen(idx, prefix)
		switch {
		case ok && v != nil:
			m.closeViolation(idx, prefix, at)
		case !ok && v == nil:
			nv := &Violation{
				Invariant: inv.Name,
				Prefix:    prefix,
				Start:     at,
				End:       at,
				StartTick: m.tick,
				Phase:     m.phase,
				Nodes:     slices.Clone(affected),
				Cause:     rootCause(at, prov),
			}
			m.open = append(m.open, nv)
			m.openInv = append(m.openInv, idx)
			if m.cfg.Stream != nil {
				rec := violationRecord(m.cfg.Name, 0, nv)
				rec.Type = "violation_open"
				m.cfg.Stream.Publish(rec)
			}
		case !ok:
			// Still violated: extend and widen the blast radius.
			v.End = at
			v.Nodes = mergeNodes(v.Nodes, affected)
		}
	}
}

// rootCause resolves a snapshot's provenance into the violation's
// root-cause record. Unrooted snapshots (initial convergence, direct API
// mutations) attribute to "init"; rooted ones carry the cause's identity
// and the blame latency from the cause's firing to the onset.
func rootCause(at time.Duration, prov sim.Provenance) RootCause {
	if !prov.Rooted() {
		return RootCause{Kind: sim.CauseNone.String(), Hops: prov.Hops}
	}
	rc := RootCause{
		Kind:  prov.Cause.Kind.String(),
		Label: prov.Cause.Label,
		Node:  prov.Cause.Node,
		Phase: prov.Cause.Phase,
		Seq:   prov.Cause.Seq,
		Hops:  prov.Hops,
	}
	if prov.Cause.At >= 0 && at > prov.Cause.At {
		rc.Latency = at - prov.Cause.At
	}
	return rc
}

// findOpen returns the open violation for (invariant idx, prefix), if any.
func (m *Monitor) findOpen(idx int, prefix bgp.Prefix) *Violation {
	for i, v := range m.open {
		if m.openInv[i] == idx && v.Prefix == prefix {
			return v
		}
	}
	return nil
}

// closeViolation moves the open violation for (idx, prefix) to the
// timeline with the given end time, samples the violation histograms and
// publishes the closed record to the live stream.
func (m *Monitor) closeViolation(idx int, prefix bgp.Prefix, end time.Duration) {
	for i, v := range m.open {
		if m.openInv[i] != idx || v.Prefix != prefix {
			continue
		}
		v.End = end
		m.timeline.Violations = append(m.timeline.Violations, *v)
		m.open = slices.Delete(m.open, i, i+1)
		m.openInv = slices.Delete(m.openInv, i, i+1)
		if rec := m.cfg.Recorder; rec != nil {
			rec.Observe(obs.HistViolationDuration, int64(v.Duration()))
			rec.Observe(obs.HistBlameLatency, int64(v.Cause.Latency))
			rec.Observe(obs.HistHopDepth, int64(v.Cause.Hops))
		}
		if m.cfg.Stream != nil {
			m.cfg.Stream.Publish(violationRecord(m.cfg.Name, len(m.timeline.Violations), v))
		}
		return
	}
}

// mergeNodes returns the sorted union of two ascending node lists.
func mergeNodes(a, b []topology.NodeID) []topology.NodeID {
	for _, n := range b {
		if _, found := slices.BinarySearch(a, n); !found {
			a = append(a, n)
		}
	}
	slices.Sort(a)
	return a
}

// Bind installs the monitor's ObserveProvenance as net's snapshot hook and
// anchors the quiescence clock at the network's current time. It returns a
// detach function restoring the previous (nil) hook; detach before
// observing states that should not count, e.g. an Abort's teardown churn.
func (m *Monitor) Bind(net *sim.Network) func() {
	m.lastChange = net.Now()
	m.now = net.Now()
	net.SetSnapshotHook(m.ObserveProvenance)
	return func() { net.SetSnapshotHook(nil) }
}

// DefaultGateWindow is the quiet period after which the forwarding plane is
// considered converged: two orders of magnitude above the per-message
// timescale (10 ms base delay + 20 ms jitter), far below the 8–12 s router
// command latency, so gating never masks churn nor stretches rounds.
const DefaultGateWindow = 2 * time.Second

// Gate returns a convergence predicate for runtime.Options.Convergence:
// the forwarding plane is quiescent when the event queue is empty, when no
// forwarding change has been observed for window, or when no pending event
// falls inside the window (nothing can change forwarding before it
// closes). A window of 0 uses DefaultGateWindow.
func (m *Monitor) Gate(window time.Duration) func(*sim.Network) bool {
	if window <= 0 {
		window = DefaultGateWindow
	}
	return func(net *sim.Network) bool {
		if net.Converged() {
			return true
		}
		quietAt := m.lastChange + window
		if net.Now() >= quietAt {
			return true
		}
		next, ok := net.NextEventAt()
		return ok && next > quietAt
	}
}

// ViolationCount returns the number of violation intervals recorded so
// far, open ones included.
func (m *Monitor) ViolationCount() int {
	return len(m.timeline.Violations) + len(m.open)
}

// Finish closes any still-open violations at the given time (marking them
// unrecovered), flushes the monitor counters to the configured recorder,
// and returns the completed timeline. Further snapshots must not be
// observed after Finish.
func (m *Monitor) Finish(at time.Duration) *Timeline {
	if m.finished {
		return &m.timeline
	}
	m.finished = true
	if at < m.now {
		at = m.now
	}
	// Close in invariant order, then prefix order: deterministic.
	for idx := range m.cfg.Invariants {
		var prefixes []bgp.Prefix
		for i, v := range m.open {
			if m.openInv[i] == idx {
				prefixes = append(prefixes, v.Prefix)
			}
		}
		slices.Sort(prefixes)
		for _, p := range prefixes {
			v := m.findOpen(idx, p)
			v.Open = true
			m.closeViolation(idx, p, at)
		}
	}
	m.timeline.StatesChecked = m.statesChecked
	m.timeline.End = at
	if rec := m.cfg.Recorder; rec != nil {
		rec.Add(obs.CtrMonitorStatesChecked, int64(m.statesChecked))
		rec.Add(obs.CtrMonitorViolations, int64(len(m.timeline.Violations)))
		rec.Add(obs.CtrMonitorViolationTime, int64(m.timeline.TotalViolation()))
		for _, inv := range m.cfg.Invariants {
			n := int64(0)
			for _, v := range m.timeline.Violations {
				if v.Invariant == inv.Name {
					n++
				}
			}
			if n > 0 {
				rec.Add("monitor_violations_"+inv.Name, n)
			}
		}
	}
	return &m.timeline
}

// Timeline returns the timeline accumulated so far (closed violations
// only; call Finish to include open ones and the summary fields).
func (m *Monitor) Timeline() *Timeline { return &m.timeline }
