package monitor

import (
	"bytes"
	"testing"
	"time"

	"chameleon/internal/topology"
)

// TestTimelineRoundTripByteIdentical pins the canonicality contract the
// run-bundle differ depends on: write → parse → re-write reproduces the
// original timeline artifact byte for byte, covering rooted and unrooted
// causes, open violations, empty timelines, and multi-timeline streams.
func TestTimelineRoundTripByteIdentical(t *testing.T) {
	tls := []*Timeline{
		{
			Name:          "snowcap",
			StatesChecked: 7,
			End:           5 * time.Second,
			Violations: []Violation{
				{Invariant: "reach", Prefix: 1, Start: 1 * time.Second, End: 2 * time.Second,
					StartTick: 3, Phase: "round 1", Nodes: []topology.NodeID{0, 2},
					Cause: RootCause{Kind: "command", Label: "withdraw old route",
						Node: 4, Phase: "round 1", Seq: 2, Hops: 3, Latency: 250 * time.Millisecond}},
				{Invariant: "loop-free", Prefix: 1, Start: 4 * time.Second, End: 5 * time.Second,
					StartTick: 6, Phase: "cleanup", Nodes: []topology.NodeID{1}, Open: true,
					Cause: RootCause{Kind: "init"}},
				{Invariant: "waypoint", Prefix: 2, Start: 0, End: 0,
					Nodes: []topology.NodeID{}, Cause: RootCause{Kind: "event",
						Label: "link failure", Node: 0, Seq: 0}},
			},
		},
		{Name: "chameleon", StatesChecked: 38, End: 90 * time.Second},
	}
	var orig bytes.Buffer
	for _, tl := range tls {
		if err := tl.WriteJSONL(&orig); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ValidateJSONL(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatalf("emitted timeline does not validate: %v", err)
	}
	var rewritten bytes.Buffer
	if err := WriteRecords(&rewritten, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), rewritten.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n-- original --\n%s\n-- rewritten --\n%s",
			orig.String(), rewritten.String())
	}
}
