package monitor

import (
	"bytes"
	"testing"
	"time"

	"chameleon/internal/topology"
)

// TestWriteExplainGolden pins the -explain report's exact rendering: the
// per-timeline summary, the violation intervals, and both root-cause forms
// (a rooted command with blame latency and hop depth; an unrooted initial
// state).
func TestWriteExplainGolden(t *testing.T) {
	tl1 := &Timeline{
		Name:          "snowcap",
		StatesChecked: 37,
		End:           5 * time.Second,
		Violations: []Violation{
			{Invariant: "reach", Prefix: 0,
				Start: 1500 * time.Millisecond, End: 2750 * time.Millisecond,
				Phase: "round 1", Nodes: []topology.NodeID{3, 4},
				Cause: RootCause{Kind: "command", Label: "push rm", Node: 2,
					Phase: "round 1", Seq: 2, Hops: 3, Latency: 250 * time.Millisecond}},
			{Invariant: "loop-free", Prefix: 1,
				Start: 4 * time.Second, End: 4500 * time.Millisecond, Open: true,
				Cause: RootCause{Kind: "init"}},
		},
	}
	tl2 := &Timeline{Name: "chameleon", StatesChecked: 38, End: 5 * time.Second}

	var b bytes.Buffer
	if err := WriteExplain(&b, tl1, tl2); err != nil {
		t.Fatal(err)
	}
	want := `timeline snowcap: 2 violations, 1.750s total violation time, 37 states checked
  #1 reach @ prefix 0: 1.500s–2.750s (1250ms)  phase=round 1  nodes=n3,n4
     └─ command "push rm" (node 2, phase=round 1, seq 2)
        fired 1.250s → onset after 250ms over 3 BGP hop(s)
  #2 loop-free @ prefix 1: 4.000s–4.500s (500ms, never recovered)  phase=-  nodes=-
     └─ no registered cause (initial convergence or direct mutation), hop depth 0

timeline chameleon: 0 violations, 0.000s total violation time, 38 states checked
`
	if got := b.String(); got != want {
		t.Errorf("explain report differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Byte-identical across renders (pure function of the timelines).
	var b2 bytes.Buffer
	if err := WriteExplain(&b2, tl1, tl2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("two renders of the same timelines differ")
	}
}
