package monitor

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteExplain renders the causal chain of every violation in the given
// timelines as a human-readable report: per timeline a summary line, then
// per violation its interval, blast radius and phase, and the root-cause
// record — which command or event set it off, how many BGP hops the churn
// traveled and how long blame took to land. The output is a pure function
// of the timelines (simulated time only), so reports are byte-identical
// across re-runs; evalharness -explain writes this.
func WriteExplain(w io.Writer, timelines ...*Timeline) error {
	bw := bufio.NewWriter(w)
	for ti, t := range timelines {
		if ti > 0 {
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "timeline %s: %d violations, %.3fs total violation time, %d states checked\n",
			t.Name, len(t.Violations), t.TotalViolation().Seconds(), t.StatesChecked)
		for i, v := range t.Violations {
			open := ""
			if v.Open {
				open = ", never recovered"
			}
			fmt.Fprintf(bw, "  #%d %s @ prefix %d: %.3fs–%.3fs (%.0fms%s)  phase=%s  nodes=%s\n",
				i+1, v.Invariant, v.Prefix, v.Start.Seconds(), v.End.Seconds(),
				float64(v.Duration().Milliseconds()), open, orDash(v.Phase), nodeList(&v))
			switch v.Cause.Kind {
			case "", "init":
				fmt.Fprintf(bw, "     └─ no registered cause (initial convergence or direct mutation), hop depth %d\n",
					v.Cause.Hops)
			default:
				fmt.Fprintf(bw, "     └─ %s %q (node %d, phase=%s, seq %d)\n",
					v.Cause.Kind, v.Cause.Label, v.Cause.Node, orDash(v.Cause.Phase), v.Cause.Seq)
				fmt.Fprintf(bw, "        fired %.3fs → onset after %.0fms over %d BGP hop(s)\n",
					(v.Start - v.Cause.Latency).Seconds(),
					float64(v.Cause.Latency.Milliseconds()), v.Cause.Hops)
			}
		}
	}
	return bw.Flush()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func nodeList(v *Violation) string {
	if len(v.Nodes) == 0 {
		return "-"
	}
	parts := make([]string, len(v.Nodes))
	for i, n := range v.Nodes {
		parts[i] = fmt.Sprintf("n%d", n)
	}
	return strings.Join(parts, ",")
}
