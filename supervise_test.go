package chameleon_test

import (
	"context"
	"path/filepath"
	"testing"

	chameleon "chameleon"
	"chameleon/internal/plan"
	"chameleon/internal/sim"
	"chameleon/internal/topology"
)

// facadeDropAll loses every command, never any message.
type facadeDropAll struct{}

func (facadeDropAll) CommandFault(_ topology.NodeID, _ string, _ int) sim.CommandFault {
	return sim.CommandFault{Kind: sim.FaultDrop}
}
func (facadeDropAll) MessageFault(_, _ topology.NodeID) sim.MessageFault {
	return sim.MessageFault{Kind: sim.FaultNone}
}

func TestFacadeSupervise(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	s := chameleon.RunningExample()
	res, err := chameleon.Supervise(s, chameleon.SuperviseOptions{
		Seed:        7,
		JournalPath: jpath,
		InjectorFactory: func(attempt int) sim.FaultInjector {
			if attempt == 0 {
				return facadeDropAll{}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != chameleon.OutcomeFinal || !res.Verified {
		t.Fatalf("Outcome = %v (verified %v), want verified final", res.Outcome, res.Verified)
	}
	if res.Replans != 1 {
		t.Errorf("Replans = %d, want 1 (attempt 0 was faulted)", res.Replans)
	}

	// Resuming the finished journal reconstructs the same outcome.
	res2, err := chameleon.ResumeSupervised(context.Background(), chameleon.RunningExample(),
		chameleon.SuperviseOptions{Seed: 7, JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed || res2.Outcome != res.Outcome {
		t.Errorf("resume: %+v, want resumed %v", res2, res.Outcome)
	}
}

// TestFacadeReleaseOnError: a failed execution with ReleaseOnError releases
// the plan's transient state (the executor's Abort — cleanup commands run
// exactly once); without the option the network is left as the error found
// it.
func TestFacadeReleaseOnError(t *testing.T) {
	run := func(release bool) (cleanups int) {
		s := chameleon.RunningExample()
		p := &chameleon.ReconfigurationPlan{
			Prefix:  s.Prefix,
			Between: [][]sim.Command{{s.Commands[0]}},
			Cleanup: []plan.Step{{
				Command: sim.Command{
					Node:        s.E1,
					Description: "remove temp override",
					Apply:       func(*sim.Network) { cleanups++ },
				},
			}},
		}
		rec := &chameleon.Reconfiguration{Scenario: s, Plan: p}
		s.Net.SetFaultInjector(facadeDropAll{})
		defer s.Net.SetFaultInjector(nil)
		_, err := rec.ExecuteCtx(context.Background(), chameleon.ExecOptions{ReleaseOnError: release})
		if err == nil {
			t.Fatal("expected the dropped command to fail the execution")
		}
		return cleanups
	}
	if got := run(true); got != 1 {
		t.Errorf("ReleaseOnError: cleanup ran %d times, want 1", got)
	}
	if got := run(false); got != 0 {
		t.Errorf("without ReleaseOnError: cleanup ran %d times, want 0", got)
	}
}
