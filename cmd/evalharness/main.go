// Command evalharness regenerates every table and figure of the paper's
// evaluation (§6, §7, App. A/C/D) on the simulated substrate and prints the
// same rows/series the paper reports.
//
// Usage:
//
//	evalharness -fig 1          # Fig. 1  (Abilene: Snowcap vs Chameleon)
//	evalharness -fig 6          # Fig. 6  (phase/round timeline)
//	evalharness -fig 7          # Fig. 7  (scheduling time vs Cr)
//	evalharness -fig 8          # Fig. 8  (spec complexity, φn vs φt)
//	evalharness -fig 9          # Fig. 9  (reconfiguration time CDF)
//	evalharness -fig 10         # Fig. 10 (table overhead CDF vs SITN)
//	evalharness -fig 11a/-fig 11b  # Fig. 11 (external events)
//	evalharness -fig 12         # Fig. 12 (five extra topologies)
//	evalharness -fig 13         # Fig. 13 (loop-constraint ablation)
//	evalharness -table 1        # Table 1 (compilation rule classes)
//	evalharness -table 2        # Table 2 (named topologies)
//	evalharness -chaos          # fault-injection sweep (topologies × fault kinds)
//	evalharness -supervise      # supervised chaos-recovery sweep (persistent faults
//	                            # + mid-reconfiguration events under the closed-loop
//	                            # supervisor; -journal DIR keeps the execution journals)
//	evalharness -all            # everything
//	evalharness -smoke          # one traced RunningExample run + span-tree validation
//
// Observability: -trace FILE writes a structured span trace (JSONL, one
// span per line, deterministic bytes for deterministic runs) of every
// instrumented stage; -metrics FILE writes the final
// counter/gauge/histogram dump; -timeline FILE writes the transient-state
// monitor's violation timelines (JSONL, with per-violation root-cause
// records, validated after writing, byte-identical across re-runs and
// worker counts) for the monitored runs (-smoke, -fig 1); -explain FILE
// (or "-") renders the human-readable causal chain of every monitored
// violation; -pprof ADDR serves net/http/pprof for live profiling;
// -serve ADDR serves the live counter/gauge/histogram state as Prometheus
// text format on /metrics plus a live span/violation feed on /events
// (chunked JSONL; ?sse=1 for SSE framing, ?follow=0 for backlog-only),
// /healthz and /debug/pprof while a long sweep is in flight — ":0" picks
// an ephemeral port and the bound address is printed; -linger DUR keeps
// those endpoints up after the runs finish. -bundle DIR seals every
// deterministic artifact of the run (trace, metrics, timelines, compiled
// plans, chaos/recovery fingerprints, supervisor journals) into a
// content-addressed run bundle that `obsdiff` can structurally compare
// against another run's. The process exits nonzero if any sweep's
// per-scenario run errored, so partially failed sweeps cannot look green
// in CI.
//
// By default the corpus sweeps are capped at -max-nodes (60) routers so a
// full run finishes on a laptop; pass -full for the entire 106-topology
// corpus including Cogentco (197) and Kdl (754), which — like the paper's
// CBC runs — can take hours.
//
// The corpus and chaos sweeps run -workers scenarios at a time (default:
// one per CPU). Results are merged in scenario order, so every CSV artifact
// and chaos fingerprint is byte-identical at any worker count; only the
// wall-clock scheduling_time_s measurements vary run to run. Pass
// -workers 1 for contention-free Fig. 7 timing measurements.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	goruntime "runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"chameleon"
	"chameleon/internal/chaos"
	"chameleon/internal/eval"
	"chameleon/internal/monitor"
	"chameleon/internal/obs"
	"chameleon/internal/obs/bundle"
	"chameleon/internal/scenario"
	"chameleon/internal/scheduler"
	"chameleon/internal/topology"
)

var (
	figFlag      = flag.String("fig", "", "figure to regenerate (1, 6, 7, 8, 9, 10, 11a, 11b, 12, 13)")
	tableFlag    = flag.String("table", "", "table to regenerate (1, 2)")
	allFlag      = flag.Bool("all", false, "regenerate every figure and table")
	fullFlag     = flag.Bool("full", false, "use the full 106-topology corpus (slow)")
	maxNodes     = flag.Int("max-nodes", 60, "cap corpus topologies at this size unless -full")
	seedFlag     = flag.Uint64("seed", 7, "scenario seed")
	runsFlag     = flag.Int("runs", 5, "runs per point for Figs. 8/13 (paper: 20)")
	topoFlag     = flag.String("topo", "", "override topology for Figs. 8/13 (default: largest within cap)")
	outFlag      = flag.String("out", "", "directory to write CSV artifacts into (optional)")
	chaosFlag    = flag.Bool("chaos", false, "run the fault-injection sweep (topologies × fault kinds)")
	superviseF   = flag.Bool("supervise", false, "run the supervised chaos-recovery sweep (every run must end in the final or initial configuration)")
	journalFlag  = flag.String("journal", "", "directory for per-case supervisor execution journals (with -supervise)")
	workersFlag  = flag.Int("workers", goruntime.NumCPU(), "parallel scenario runs for the corpus and chaos sweeps (1 = sequential)")
	traceFlag    = flag.String("trace", "", "write a structured span trace (JSONL) of the instrumented runs to this file")
	metricsFlag  = flag.String("metrics", "", "write the final counter/gauge dump to this file")
	timelineFlag = flag.String("timeline", "", "write the transient-state monitor's violation timelines (JSONL) to this file")
	pprofFlag    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	serveFlag    = flag.String("serve", "", "serve live /metrics (Prometheus text format), /events (live span/violation stream), /healthz and /debug/pprof on this address while the run is in flight (\":0\" picks an ephemeral port; the bound address is printed)")
	explainFlag  = flag.String("explain", "", "write a human-readable root-cause report of every monitored violation to this file (\"-\" for stdout)")
	lingerFlag   = flag.Duration("linger", 0, "keep the -serve endpoints alive for this long after the runs finish (CI smoke curls them)")
	smokeFlag    = flag.Bool("smoke", false, "run one traced RunningExample reconfiguration and validate the span tree (CI gate)")
	bundleFlag   = flag.String("bundle", "", "seal a content-addressed run bundle (manifest + trace/metrics/timeline/plan/chaos/journal parts) into this directory; two same-seed runs bundle byte-identically at any -workers count, which `obsdiff` checks")
)

// recorder observes every instrumented run when -trace/-metrics/-smoke ask
// for it; runCtx carries it into the sweeps. A nil recorder records
// nothing.
var (
	recorder *obs.Recorder
	runCtx   = context.Background()
)

// eventStream broadcasts spans and monitor violations to /events
// subscribers when -serve is active; nil otherwise (publishing to a nil
// stream is a no-op, so monitored runs pass it through unconditionally).
var eventStream *obs.Stream

// sweepRunErrs counts per-scenario errors inside otherwise-successful
// sweeps; a nonzero count fails the process at exit (satisfying "a sweep
// that partially failed must not look green").
var sweepRunErrs int

// timelines collects the monitor timelines of every monitored run
// (-smoke, -fig 1) in execution order for the -timeline artifact.
var timelines []*monitor.Timeline

// Run-bundle inputs, collected as the sections execute (-bundle):
// compiled plan texts, chaos/recovery fingerprints, and the names of the
// sections that ran (the bundle's scenario key).
var (
	planTexts       []planText
	chaosResults    []chaos.CaseResult
	recoveryResults []chaos.RecoveryResult
	sections        []string
)

type planText struct{ name, text string }

// writeObsArtifacts exports the recorder, timelines and run bundle once,
// before any exit path.
func writeObsArtifacts() {
	writeTimelines()
	writeExplain()
	defer writeRunBundle()
	if recorder == nil {
		return
	}
	if err := recorder.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "trace validation:", err)
		sweepRunErrs++
	}
	if *traceFlag != "" {
		if err := writeFile(*traceFlag, recorder.WriteJSONL); err != nil {
			fmt.Fprintln(os.Stderr, "writing trace:", err)
			sweepRunErrs++
		} else if n, err := validateTraceFile(*traceFlag); err != nil {
			fmt.Fprintln(os.Stderr, "emitted trace ill-formed:", err)
			sweepRunErrs++
		} else {
			fmt.Printf("(wrote %s: %d spans, validated)\n", *traceFlag, n)
		}
	}
	if *metricsFlag != "" {
		if err := writeFile(*metricsFlag, recorder.WriteMetrics); err != nil {
			fmt.Fprintln(os.Stderr, "writing metrics:", err)
			sweepRunErrs++
		} else {
			fmt.Printf("(wrote %s)\n", *metricsFlag)
		}
	}
}

// writeTimelines writes the -timeline artifact (one JSONL stream, all
// monitored runs in execution order) and re-validates the emitted bytes.
func writeTimelines() {
	if *timelineFlag == "" {
		return
	}
	if len(timelines) == 0 {
		fmt.Fprintln(os.Stderr, "writing timeline: no monitored run produced one (-timeline needs -smoke or -fig 1)")
		sweepRunErrs++
		return
	}
	err := writeFile(*timelineFlag, func(w io.Writer) error {
		for _, tl := range timelines {
			if err := tl.WriteJSONL(w); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "writing timeline:", err)
		sweepRunErrs++
		return
	}
	f, err := os.Open(*timelineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validating timeline:", err)
		sweepRunErrs++
		return
	}
	defer f.Close()
	recs, err := monitor.ValidateJSONL(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emitted timeline ill-formed:", err)
		sweepRunErrs++
		return
	}
	fmt.Printf("(wrote %s: %d records, validated)\n", *timelineFlag, len(recs))
}

// writeExplain renders the -explain root-cause report: every monitored
// violation with its causal chain (originating command or event, phase,
// hop depth, blame latency), in execution order.
func writeExplain() {
	if *explainFlag == "" {
		return
	}
	if len(timelines) == 0 {
		fmt.Fprintln(os.Stderr, "writing explain report: no monitored run produced a timeline (-explain needs -smoke or -fig 1)")
		sweepRunErrs++
		return
	}
	if *explainFlag == "-" {
		fmt.Println()
		if err := monitor.WriteExplain(os.Stdout, timelines...); err != nil {
			fmt.Fprintln(os.Stderr, "writing explain report:", err)
			sweepRunErrs++
		}
		return
	}
	err := writeFile(*explainFlag, func(w io.Writer) error {
		return monitor.WriteExplain(w, timelines...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "writing explain report:", err)
		sweepRunErrs++
		return
	}
	fmt.Printf("(wrote %s)\n", *explainFlag)
}

// writeRunBundle seals the -bundle directory: a content-addressed manifest
// over every deterministic artifact the run produced. Wall-clock artifacts
// (the scheduling-time CSVs) are deliberately excluded, so two runs of the
// same sections and seed seal byte-identical bundles at any -workers
// count — `obsdiff A B` exiting 0 is the determinism gate.
func writeRunBundle() {
	if *bundleFlag == "" {
		return
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sealing bundle:", err)
		sweepRunErrs++
	}
	w, err := bundle.Create(*bundleFlag, strings.Join(sections, "+"), *seedFlag)
	if err != nil {
		fail(err)
		return
	}
	// Options record the environment without entering the content address:
	// runs at different parallelism must address identically.
	w.SetOption("workers", strconv.Itoa(*workersFlag))
	w.SetOption("max_nodes", strconv.Itoa(*maxNodes))
	w.SetOption("full", strconv.FormatBool(*fullFlag))
	w.SetOption("runs", strconv.Itoa(*runsFlag))
	add := func(name, kind string, write func(io.Writer) error) {
		if err := w.AddPart(name, kind, write); err != nil {
			fail(err)
		}
	}
	if recorder != nil {
		add("trace.jsonl", bundle.KindTrace, recorder.WriteJSONL)
		add("metrics.txt", bundle.KindMetrics, recorder.WriteMetrics)
	}
	if len(timelines) > 0 {
		add("timeline.jsonl", bundle.KindTimeline, func(dst io.Writer) error {
			for _, tl := range timelines {
				if err := tl.WriteJSONL(dst); err != nil {
					return err
				}
			}
			return nil
		})
	}
	for _, p := range planTexts {
		text := p.text
		add("plan/"+p.name+".txt", bundle.KindPlan, func(dst io.Writer) error {
			_, err := io.WriteString(dst, text)
			return err
		})
	}
	if len(chaosResults) > 0 {
		add("chaos.txt", bundle.KindChaos, func(dst io.Writer) error {
			return chaos.WriteFingerprints(dst, chaosResults)
		})
	}
	if len(recoveryResults) > 0 {
		add("recovery.txt", bundle.KindChaos, func(dst io.Writer) error {
			return chaos.WriteRecoveryFingerprints(dst, recoveryResults)
		})
	}
	// Link the supervisor execution journals (one JSONL WAL per supervised
	// case) into the manifest so a bundle diff can name the exact recovery
	// decision where two runs parted.
	if *journalFlag != "" && len(recoveryResults) > 0 {
		names, err := filepath.Glob(filepath.Join(*journalFlag, "*.jsonl"))
		if err != nil {
			fail(err)
		}
		sort.Strings(names)
		for _, src := range names {
			if err := w.AddFile("journal/"+filepath.Base(src), bundle.KindJournal, src); err != nil {
				fail(err)
			}
		}
	}
	m, err := w.Close()
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("(sealed bundle %s: %d parts, id %s)\n", *bundleFlag, len(m.Parts), m.ID)
}

// validateTraceFile re-reads an emitted JSONL trace and runs the
// well-formedness checker over it, returning the span count.
func validateTraceFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return obs.ValidateJSONL(f)
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// saveCSV writes one CSV artifact when -out is set.
func saveCSV(name string, write func(io.Writer) error) {
	if *outFlag == "" {
		return
	}
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "saving artifacts:", err)
		return
	}
	f, err := os.Create(filepath.Join(*outFlag, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, "saving artifacts:", err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "saving artifacts:", err)
	}
	fmt.Printf("(wrote %s)\n", filepath.Join(*outFlag, name))
}

func main() {
	flag.Parse()
	if *pprofFlag != "" {
		go func() {
			if err := http.ListenAndServe(*pprofFlag, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
		fmt.Printf("(pprof listening on http://%s/debug/pprof/)\n", *pprofFlag)
	}
	if *traceFlag != "" || *metricsFlag != "" || *smokeFlag || *serveFlag != "" || *bundleFlag != "" {
		recorder = obs.New()
		runCtx = obs.WithRecorder(runCtx, recorder)
	}
	if *serveFlag != "" {
		eventStream = obs.NewStream(obs.DefaultStreamCapacity)
		recorder.SetStream(eventStream)
		_, bound, err := obs.ServeWith(*serveFlag, recorder, obs.ServeOptions{
			Prom:   obs.PromOptions{ConstLabels: map[string]string{"job": "evalharness"}},
			Stream: eventStream,
		}, func(err error) { fmt.Fprintln(os.Stderr, "metrics server:", err) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics server:", err)
			os.Exit(1)
		}
		fmt.Printf("(live metrics on http://%s/metrics, events on /events, pprof on /debug/pprof/)\n", bound)
	}

	ran := false
	run := func(name string, f func() error) {
		ran = true
		sections = append(sections, name)
		fmt.Printf("\n================ %s ================\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			writeObsArtifacts()
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *smokeFlag {
		run("Smoke", smoke)
	}
	want := func(id string) bool { return *allFlag || *figFlag == id }
	if want("1") {
		run("Figure 1", fig1)
	}
	if want("6") {
		run("Figure 6", fig6)
	}
	if want("7") {
		run("Figure 7", fig7)
	}
	if want("8") {
		run("Figure 8", fig8)
	}
	if want("9") {
		run("Figure 9", fig9)
	}
	if want("10") {
		run("Figure 10", fig10)
	}
	if want("11a") {
		run("Figure 11a", fig11a)
	}
	if want("11b") {
		run("Figure 11b", fig11b)
	}
	if want("12") {
		run("Figure 12", fig12)
	}
	if want("13") {
		run("Figure 13", fig13)
	}
	if *allFlag || *tableFlag == "1" {
		run("Table 1", table1)
	}
	if *allFlag || *tableFlag == "2" {
		run("Table 2", table2)
	}
	if *allFlag || *chaosFlag {
		run("Chaos sweep", chaosSweep)
	}
	if *allFlag || *superviseF {
		run("Recovery sweep", recoverySweep)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	writeObsArtifacts()
	if *lingerFlag > 0 && *serveFlag != "" {
		fmt.Printf("(lingering %v for live endpoint probes)\n", *lingerFlag)
		time.Sleep(*lingerFlag)
	}
	if sweepRunErrs > 0 {
		fmt.Fprintf(os.Stderr, "%d sweep run(s) errored\n", sweepRunErrs)
		os.Exit(1)
	}
}

// smoke plans and executes the Fig. 3 running example through the traced,
// context-aware facade with the transient-state monitor attached, then
// checks the recorded span tree for well-formedness, reconciles the
// execute span's round count with the schedule, and asserts that the
// monitor saw zero transient invariant violations. It is the CI gate for
// the observability layer.
func smoke() error {
	s := chameleon.RunningExample()
	mon := chameleon.NewMonitor(chameleon.MonitorConfig{
		Name:       "smoke",
		Invariants: chameleon.DefaultInvariants(s.Graph),
		Recorder:   recorder,
		Stream:     eventStream,
	})
	rec, err := chameleon.PlanCtx(runCtx, s, chameleon.PlanOptions{Monitor: mon})
	if err != nil {
		return err
	}
	res, err := rec.ExecuteCtx(runCtx, chameleon.ExecOptions{Monitor: mon})
	if err != nil {
		return err
	}
	if err := rec.Verify(res); err != nil {
		return err
	}
	planTexts = append(planTexts, planText{"smoke", rec.Plan.String()})
	tl := mon.Timeline()
	timelines = append(timelines, tl)
	if n := len(tl.Violations); n != 0 {
		v := tl.Violations[0]
		return fmt.Errorf("monitor recorded %d transient violations (want 0); first: %s at %v on nodes %v",
			n, v.Invariant, v.Start, v.Nodes)
	}
	if err := recorder.Validate(); err != nil {
		return fmt.Errorf("span tree ill-formed: %w", err)
	}
	rounds := 0
	for _, name := range recorder.SpanNames() {
		var r int
		if _, err := fmt.Sscanf(name, "round %d", &r); err == nil {
			rounds++
		}
	}
	if rounds != rec.Schedule.R {
		return fmt.Errorf("trace has %d round spans, schedule has R=%d", rounds, rec.Schedule.R)
	}
	fmt.Printf("smoke: %d spans, %d rounds traced, R=%d, sim duration %.1f s, spec verified\n",
		recorder.NumSpans(), rounds, rec.Schedule.R, res.Duration().Seconds())
	fmt.Printf("monitor: %d transient states checked, 0 violations\n", tl.StatesChecked)
	fmt.Print(recorder.FlameSummary())
	return nil
}

// corpus returns the evaluated topology set under the size cap.
func corpus() []string {
	var names []string
	for _, name := range topology.ZooNames() {
		size, _ := topology.ZooSize(name)
		if size < 5 {
			continue // too small for 3 egresses + reflectors
		}
		if !*fullFlag && size > *maxNodes {
			continue
		}
		names = append(names, name)
	}
	return names
}

func sweepTopo() string {
	if *topoFlag != "" {
		return *topoFlag
	}
	// Default: the largest corpus topology within the cap (the paper uses
	// Cogentco, its second-largest scenario).
	best, bestSize := "Abilene", 0
	for _, name := range corpus() {
		if size, _ := topology.ZooSize(name); size > bestSize {
			best, bestSize = name, size
		}
	}
	return best
}

func printMeasurementSeries(label string, r *eval.CaseStudyResult) {
	fmt.Printf("%s: duration %.1f s\n", label, durSecondsOf(label, r))
	var m = r.Snowcap
	if label == "Chameleon" {
		m = r.Chameleon
	}
	egs := m.Egresses()
	fmt.Printf("  %8s  %10s  %10s  %8s", "time[s]", "total", "dropped", "wayp.viol")
	for _, e := range egs {
		fmt.Printf("  egress-n%d", int(e))
	}
	fmt.Println()
	step := len(m.Samples)/12 + 1
	for i := 0; i < len(m.Samples); i += step {
		s := m.Samples[i]
		fmt.Printf("  %8.2f  %10.0f  %10.0f  %8.0f", s.Time, s.Delivered, s.Dropped, s.WaypointViolations)
		for _, e := range egs {
			fmt.Printf("  %9.0f", s.PerEgress[e])
		}
		fmt.Println()
	}
	fmt.Printf("  totals: dropped %.0f pkt, waypoint violations %.0f pkt, violation window %.2f s\n",
		m.TotalDropped, m.TotalViolations, m.ViolationSeconds)
}

func durSecondsOf(label string, r *eval.CaseStudyResult) float64 {
	if label == "Chameleon" {
		return r.ChameleonDuration.Seconds()
	}
	return r.SnowcapDuration.Seconds()
}

func fig1() error {
	r, err := eval.RunCaseStudyCtx(runCtx, "Abilene", *seedFlag)
	if err != nil {
		return err
	}
	saveCSV("fig1_snowcap.csv", func(w io.Writer) error { return eval.WriteCaseStudyCSV(w, r.Snowcap) })
	saveCSV("fig1_chameleon.csv", func(w io.Writer) error { return eval.WriteCaseStudyCSV(w, r.Chameleon) })
	saveCSV("fig6_phases.csv", func(w io.Writer) error { return eval.WritePhaseCSV(w, r) })
	saveCSV("fig1_timeline.csv", func(w io.Writer) error {
		return eval.WriteTimelineCSV(w, r.SnowcapTimeline, r.ChameleonTimeline)
	})
	timelines = append(timelines, r.SnowcapTimeline, r.ChameleonTimeline)
	planTexts = append(planTexts, planText{"fig1-abilene", r.PlanText})
	fmt.Println("Abilene case study (§6): direct application (Snowcap) vs Chameleon.")
	fmt.Println("Paper shape: Snowcap finishes in ~1.7 s but transiently drops ~15k packets")
	fmt.Println("and violates waypointing; Chameleon takes ~30-60x longer with zero violations.")
	fmt.Println()
	printMeasurementSeries("Snowcap", r)
	fmt.Println()
	printMeasurementSeries("Chameleon", r)
	fmt.Printf("\nslowdown: %.1fx   Chameleon clean: %v   Snowcap clean: %v\n",
		r.ChameleonDuration.Seconds()/r.SnowcapDuration.Seconds(),
		r.Chameleon.Clean(), r.Snowcap.Clean())
	fmt.Println("\nMonitor-measured transient violation time (Fig. 9 comparison):")
	fmt.Print(eval.FormatViolationTable(r))
	return nil
}

func fig6() error {
	r, err := eval.RunCaseStudyCtx(runCtx, "Abilene", *seedFlag)
	if err != nil {
		return err
	}
	fmt.Println("Chameleon phase timeline (paper: rounds take 10-12 s each, dominated")
	fmt.Println("by router route-map application latency):")
	for _, ph := range r.Phases {
		fmt.Printf("  %-10s  %7.1f s → %7.1f s   (%.1f s)\n",
			ph.Name, ph.Start.Seconds(), ph.End.Seconds(), (ph.End - ph.Start).Seconds())
	}
	fmt.Printf("  total: %.1f s across setup + %d rounds + cleanup, %d temp sessions\n",
		r.ChameleonDuration.Seconds(), r.R, r.TempSessions)
	return nil
}

var sweepMemo []eval.SweepOutcome

func schedulingSweep() ([]eval.SweepOutcome, error) {
	if sweepMemo != nil {
		fmt.Println("(reusing the scheduling sweep computed earlier in this run)")
		return sweepMemo, nil
	}
	names := corpus()
	fmt.Printf("sweeping %d scenarios (cap %d nodes, -full=%v, %d workers)\n",
		len(names), *maxNodes, *fullFlag, *workersFlag)
	opts := scheduler.DefaultOptions()
	outs, err := eval.SweepSchedulingCtx(runCtx, names, *seedFlag, opts, *workersFlag, func(o eval.SweepOutcome) {
		status := "ok"
		if o.Err != nil {
			status = o.Err.Error()
			sweepRunErrs++
		}
		fmt.Printf("  %-22s |N|=%4d  Cr=%6d  R=%2d  sched=%10v  %s\n",
			o.Name, o.Nodes, o.Cr, o.R, o.SchedulingTime.Round(time.Millisecond), status)
	})
	if err != nil {
		return nil, err
	}
	sweepMemo = outs
	return sweepMemo, nil
}

func fig7() error {
	outs, err := schedulingSweep()
	if err != nil {
		return err
	}
	saveCSV("fig7_scheduling.csv", func(w io.Writer) error { return eval.WriteSweepCSV(w, outs) })
	var crs, times []float64
	for _, o := range outs {
		if o.Err == nil {
			crs = append(crs, float64(o.Cr))
			times = append(times, o.SchedulingTime.Seconds())
		}
	}
	fmt.Printf("\nFig. 7 statistic: log-log Pearson correlation(Cr, scheduling time) = %.3f\n",
		eval.PearsonLogLog(crs, times))
	fmt.Println("(paper: strong correlation across >4 orders of magnitude of Cr)")
	return nil
}

func fig8() error {
	topo := sweepTopo()
	fracs := []float64{0, 0.25, 0.5, 0.75, 1}
	fmt.Printf("spec-complexity sweep on %s, %d runs per point (paper: 20)\n", topo, *runsFlag)
	for _, temporal := range []bool{false, true} {
		label := "φn (non-temporal)"
		if temporal {
			label = "φt (temporal)"
		}
		pts, err := eval.SpecComplexitySweep(topo, temporal, true, fracs, *runsFlag, *seedFlag)
		if err != nil {
			return err
		}
		name := "fig8_phi_n.csv"
		if temporal {
			name = "fig8_phi_t.csv"
		}
		saveCSV(name, func(w io.Writer) error { return eval.WriteSpecSweepCSV(w, label, pts) })
		fmt.Printf("\n%s:\n", label)
		for _, pt := range pts {
			fmt.Printf("  |Nφ|=%4d  median=%10v  p10=%10v  p90=%10v\n",
				pt.Nphi, pt.Median.Round(time.Millisecond),
				pt.P10.Round(time.Millisecond), pt.P90.Round(time.Millisecond))
		}
	}
	fmt.Println("\n(paper shape: φt grows much faster with |Nφ| than φn — up to ~20x)")
	return nil
}

func fig9() error {
	outs, err := schedulingSweep()
	if err != nil {
		return err
	}
	var xs []float64
	for _, o := range outs {
		if o.Err == nil {
			xs = append(xs, o.EstimatedReconfTime.Seconds())
		}
	}
	fmt.Println()
	fmt.Print(eval.AsciiCDF("Fig. 9: approximate reconfiguration time T̃ = 12s·(2+R)", "s",
		xs, []float64{60, 120, 300}))
	fmt.Printf("(paper: 85%% of scenarios below 2 minutes)\n")
	return nil
}

func fig10() error {
	names := corpus()
	fmt.Printf("table-overhead sweep over %d scenarios (%d workers)\n", len(names), *workersFlag)
	outs, err := eval.SweepTableOverheadCtx(runCtx, names, *seedFlag, scheduler.DefaultOptions(), *workersFlag, func(o eval.OverheadOutcome) {
		status := "ok"
		if o.Err != nil {
			status = o.Err.Error()
			sweepRunErrs++
		}
		fmt.Printf("  %-22s baseline=%5d  chameleon=+%5.1f%%  sitn=+%5.1f%%  %s\n",
			o.Name, o.Baseline, 100*o.Chameleon, 100*o.SITN, status)
	})
	if err != nil {
		return err
	}
	saveCSV("fig10_overhead.csv", func(w io.Writer) error { return eval.WriteOverheadCSV(w, outs) })
	var cham, sitnXs []float64
	for _, o := range outs {
		if o.Err == nil {
			cham = append(cham, 100*o.Chameleon)
			sitnXs = append(sitnXs, 100*o.SITN)
		}
	}
	fmt.Println()
	fmt.Print(eval.AsciiCDF("Chameleon additional routing table entries", "%", cham, []float64{8, 20, 43}))
	fmt.Print(eval.AsciiCDF("SITN additional routing table entries", "%", sitnXs, []float64{43, 96, 100}))
	fmt.Println("(paper: Chameleon median ≈ 8%, mean ≈ 11%; SITN ≈ 96%)")
	return nil
}

func fig11a() error {
	r, err := eval.RunLinkFailureExperiment("Abilene", *seedFlag, 7*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("link failure at 7 s: reconfiguration completed in %.1f s\n", r.Result.Duration().Seconds())
	fmt.Printf("packet loss window: %.2f s (paper: ≈0.5 s of OSPF reconvergence)\n",
		r.Measurement.ViolationSeconds)
	fmt.Printf("total dropped: %.0f packets\n", r.Measurement.TotalDropped)
	return nil
}

func fig11b() error {
	r, err := eval.RunNewRouteExperiment("Abilene", *seedFlag, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("better route announced at e4 after 30 s (mid-update): ignored during the update phase\n")
	fmt.Printf("reconfiguration completed in %.1f s; converged to e4 afterwards: %v\n",
		r.Result.Duration().Seconds(), r.ConvergedToE4)
	fmt.Printf("drops during plan execution: %.0f packets\n", r.Measurement.TotalDropped)
	return nil
}

func fig12() error {
	for _, name := range []string{"Compuserve", "HiberniaCanada", "Sprint", "JGN2plus", "EEnet"} {
		r, err := eval.RunCaseStudyCtx(runCtx, name, *seedFlag)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-16s snowcap: %5.2f s (dropped %6.0f, viol %5.0f)   chameleon: %6.1f s (dropped %3.0f, viol %3.0f, R=%d)\n",
			name,
			r.SnowcapDuration.Seconds(), r.Snowcap.TotalDropped, r.Snowcap.TotalViolations,
			r.ChameleonDuration.Seconds(), r.Chameleon.TotalDropped, r.Chameleon.TotalViolations, r.R)
	}
	fmt.Println("(paper: Snowcap black-holes 1-2 s everywhere, violates waypoints in 4/5;")
	fmt.Println(" Chameleon clean everywhere, < 1 min)")
	return nil
}

func fig13() error {
	topo := sweepTopo()
	fracs := []float64{0, 0.5, 1}
	fmt.Printf("loop-constraint ablation on %s (temporal spec), %d runs per point\n", topo, *runsFlag)
	for _, explicit := range []bool{true, false} {
		label := "explicit (with Eq. 3)"
		if !explicit {
			label = "implicit (without Eq. 3)"
		}
		pts, err := eval.SpecComplexitySweep(topo, true, explicit, fracs, *runsFlag, *seedFlag)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", label)
		for _, pt := range pts {
			spread := float64(pt.P90-pt.P10) / float64(time.Millisecond)
			fmt.Printf("  |Nφ|=%4d  median=%10v  p10-p90 spread=%8.0f ms\n",
				pt.Nphi, pt.Median.Round(time.Millisecond), spread)
		}
	}
	fmt.Println("\n(paper shape: explicit loop constraints shrink the scheduling-time variance)")
	return nil
}

func chaosSweep() error {
	cfg := chaos.DefaultSweep()
	cfg.Seeds = []uint64{*seedFlag}
	cfg.Workers = *workersFlag
	fmt.Printf("chaos sweep: %d topologies × %d fault kinds, seed %d, %d workers\n",
		len(cfg.Topologies), len(cfg.Faults), *seedFlag, *workersFlag)
	results, sums, err := chaos.SweepCtx(runCtx, cfg, func(r chaos.CaseResult) {
		fmt.Printf("  %-12s %-10s → %-10s faults=%d msg=%d flaps=%d retries=%d repush=%d acks-=%d  %s\n",
			r.Topology, r.Fault, r.Outcome, r.CommandFaults, r.MessageFaults,
			r.Flaps, r.Recovery.Retries, r.Recovery.Repushes, r.Recovery.AcksLost, r.Err)
	})
	if err != nil {
		return err
	}
	chaosResults = results
	saveCSV("chaos_sweep.csv", func(w io.Writer) error { return eval.WriteChaosCSV(w, results) })
	fmt.Println()
	fmt.Print(eval.FormatChaosTable(sums))
	violations := 0
	for _, s := range sums {
		violations += s.Violations
	}
	fmt.Printf("\nsilent violations: %d (must be 0 — every fault is either absorbed or visibly flagged)\n",
		violations)
	if violations > 0 {
		return fmt.Errorf("%d silent invariant violations", violations)
	}
	return nil
}

// recoverySweep runs the supervised chaos-recovery matrix: persistent
// command faults and harmful mid-reconfiguration events under the
// closed-loop supervisor. Acceptance is absolute: every run must terminate
// in the final or the initial configuration, verified by readback, with
// zero silent invariant violations — any other result fails the process.
func recoverySweep() error {
	cfg := chaos.DefaultRecoverySweep()
	cfg.Seeds = []uint64{*seedFlag}
	cfg.Workers = *workersFlag
	if *journalFlag != "" {
		if err := os.MkdirAll(*journalFlag, 0o755); err != nil {
			return err
		}
		cfg.JournalDir = *journalFlag
	}
	fmt.Printf("recovery sweep: %d topologies × %d profiles, seed %d, %d workers\n",
		len(cfg.Topologies), len(cfg.Profiles), *seedFlag, *workersFlag)
	results, err := chaos.RecoverySweep(runCtx, cfg, func(r chaos.RecoveryResult) {
		verdict := "recovered"
		if !r.Recovered {
			verdict = "NOT RECOVERED"
		}
		fmt.Printf("  %-16s %-22s → %-7s attempts=%d replans=%d commit=%v rollback=%v forced=%v viol=%v  %s\n",
			r.Topology, r.Profile, r.Outcome, r.Attempts, r.Replans,
			r.Committed, r.RolledBack, r.Forced, r.ViolationTime, verdict)
	})
	if err != nil {
		return err
	}
	recoveryResults = results
	if *journalFlag != "" {
		fmt.Printf("(wrote %d execution journals to %s)\n", len(results), *journalFlag)
	}
	bad := 0
	for _, r := range results {
		if !r.Recovered {
			bad++
			fmt.Fprintf(os.Stderr, "NOT RECOVERED: %s/%s/seed=%d outcome=%s verified=%v silent=%v\n",
				r.Topology, r.Profile, r.Seed, r.Outcome, r.Verified, r.SilentViolations)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d supervised run(s) did not recover to a final-or-initial configuration", bad)
	}
	fmt.Printf("\nall %d supervised runs terminated in the final or initial configuration, zero silent violations\n",
		len(results))
	return nil
}

func table1() error {
	// Table 1 enumerates the four compilation rule classes; show a real
	// compiled plan exercising them.
	s, err := scenario.CaseStudy("Abilene", scenario.Config{Seed: *seedFlag})
	if err != nil {
		return err
	}
	rec, err := eval.BuildPipelineCtx(runCtx, s, eval.SpecEq4, scheduler.DefaultOptions())
	if err != nil {
		return err
	}
	classes := map[string]int{}
	for n, t := range rec.Schedule.Tuples {
		_ = n
		switch {
		case t.Old == t.NH && t.NH == t.New:
			classes["r_old = r_nh = r_new"]++
		case t.Old < t.NH && t.NH == t.New:
			classes["r_old < r_nh = r_new"]++
		case t.Old == t.NH && t.NH < t.New:
			classes["r_old = r_nh < r_new"]++
		default:
			classes["r_old < r_nh < r_new"]++
		}
	}
	fmt.Println("Table 1 rule classes exercised by the Abilene schedule:")
	var keys []string
	for k := range classes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-22s : %d nodes\n", k, classes[k])
	}
	fmt.Println("\nCompiled plan:")
	fmt.Print(rec.Plan.String())
	return nil
}

func table2() error {
	names := []string{"Deltacom", "Ion", "Pern", "TataNld", "Colt", "UsCarrier", "Cogentco"}
	if !*fullFlag {
		fmt.Println("note: Table 2 uses 113-197 node topologies; running them regardless of -max-nodes")
	}
	opts := scheduler.DefaultOptions()
	outs, err := eval.SweepSchedulingCtx(runCtx, names, *seedFlag, opts, *workersFlag, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %8s %14s\n", "Topology", "|N|", "Cr", "sched time")
	for _, o := range outs {
		if o.Err != nil {
			fmt.Printf("%-12s %6d %8s %14s (%v)\n", o.Name, o.Nodes, "-", "-", o.Err)
			sweepRunErrs++
			continue
		}
		fmt.Printf("%-12s %6d %8d %14v\n", o.Name, o.Nodes, o.Cr, o.SchedulingTime.Round(10*time.Millisecond))
	}
	fmt.Println("(paper: Cr correlates with scheduling time better than |N| —")
	fmt.Println(" e.g. Pern has more nodes than Ion but ~50x lower scheduling time)")
	return nil
}
