// Command bgpsim is a textual BGP simulator explorer — the equivalent of
// the paper's web application (App. E, https://bgpsim.github.io): it loads
// a scenario, lets you step through queued BGP events one at a time, and
// shows the control-plane (routing) and data-plane (forwarding) state after
// each step.
//
// Usage:
//
//	bgpsim -topo Abilene              # interactive REPL
//	bgpsim -example -script "run;state;routes 3"
//
// REPL commands:
//
//	step [n]      process the next n events (default 1)
//	run           process events until convergence
//	state         show the forwarding state (data-plane layer)
//	routes <id>   show a router's candidate routes and selection
//	queue         show the number of in-flight events
//	reconf        apply the scenario's reconfiguration command
//	fail <a> <b>  fail the link between routers a and b
//	trace         show the recorded forwarding-state history
//	plan          compute a Chameleon reconfiguration plan (App. E.3)
//	plan-status   show the plan's steps with live condition status
//	plan-next     apply the next step whose pre-conditions hold
//	help, quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	chameleon "chameleon"
	"chameleon/internal/config"
	"chameleon/internal/fwd"
	"chameleon/internal/plan"
	"chameleon/internal/topology"
)

var (
	topoFlag   = flag.String("topo", "Abilene", "corpus topology")
	configFlag = flag.String("config", "", "scenario configuration file (overrides -topo)")
	seedFlag   = flag.Uint64("seed", 7, "scenario seed")
	example    = flag.Bool("example", false, "use the Fig. 3 running example")
	scriptFlag = flag.String("script", "", "semicolon-separated commands to run non-interactively")
)

func main() {
	flag.Parse()
	var s *chameleon.Scenario
	var err error
	switch {
	case *configFlag != "":
		raw, rerr := os.ReadFile(*configFlag)
		if rerr == nil {
			var cfg *config.Config
			if cfg, err = config.Parse(string(raw)); err == nil {
				s, err = cfg.Scenario(*seedFlag)
			}
		} else {
			err = rerr
		}
	case *example:
		s = chameleon.RunningExample()
	default:
		s, err = chameleon.NewCaseStudy(*topoFlag, *seedFlag)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}
	r := &repl{s: s}
	fmt.Printf("bgpsim: %s (converged; %d routers)\n", s.Name, len(s.Graph.Internal()))
	if *scriptFlag != "" {
		for _, cmd := range strings.Split(*scriptFlag, ";") {
			if cmd = strings.TrimSpace(cmd); cmd != "" {
				fmt.Printf("> %s\n", cmd)
				r.exec(cmd)
			}
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line != "" {
			r.exec(line)
		}
		fmt.Print("> ")
	}
}

type repl struct {
	s *chameleon.Scenario

	// Plan-exploration state (App. E.3): the compiled plan flattened into
	// an ordered step list, with an applied marker per step.
	planSteps   []plan.Step
	stepPhase   []string
	stepApplied []bool
}

func (r *repl) exec(line string) {
	fields := strings.Fields(line)
	net := r.s.Net
	switch fields[0] {
	case "help":
		fmt.Println("commands: step [n] | run | state | routes <id> | queue | reconf | fail <a> <b> | trace | plan | plan-status | plan-next | quit")
	case "step":
		n := 1
		if len(fields) > 1 {
			n, _ = strconv.Atoi(fields[1])
		}
		done := 0
		for i := 0; i < n && net.Step(); i++ {
			done++
		}
		fmt.Printf("processed %d events, t=%v, %d pending\n", done, net.Now(), net.Pending())
	case "run":
		n := net.Run()
		fmt.Printf("converged after %d events at t=%v\n", n, net.Now())
	case "state":
		st := net.ForwardingState(r.s.Prefix)
		for _, n := range r.s.Graph.Internal() {
			fmt.Printf("  %-16s → %s\n", r.s.Graph.Node(n).Name, nhName(r.s.Graph, st[n]))
		}
	case "routes":
		if len(fields) < 2 {
			fmt.Println("usage: routes <id|name>")
			return
		}
		id, ok := parseNode(r.s.Graph, fields[1])
		if !ok {
			fmt.Println("unknown node")
			return
		}
		best, hasBest := net.Best(id, r.s.Prefix)
		for _, c := range net.Candidates(id, r.s.Prefix) {
			mark := " "
			if hasBest && c.PathEqual(best) && c.Weight == best.Weight {
				mark = "*"
			}
			fmt.Printf("  %s %v\n", mark, c)
		}
		if !hasBest {
			fmt.Println("  (no route selected)")
		}
	case "queue":
		fmt.Printf("%d events pending, t=%v\n", net.Pending(), net.Now())
	case "reconf":
		for _, cmd := range r.s.Commands {
			fmt.Printf("applying: %s\n", cmd.Description)
			cmd.Apply(net)
		}
	case "fail":
		if len(fields) < 3 {
			fmt.Println("usage: fail <a> <b>")
			return
		}
		a, okA := parseNode(r.s.Graph, fields[1])
		b, okB := parseNode(r.s.Graph, fields[2])
		if !okA || !okB || !net.FailLink(a, b) {
			fmt.Println("no such link")
			return
		}
		fmt.Println("link failed; IGP reconverged")
	case "plan":
		rec, err := chameleon.Plan(r.s, chameleon.PlanOptions{})
		if err != nil {
			fmt.Println("planning failed:", err)
			return
		}
		r.planSteps = r.planSteps[:0]
		r.stepPhase = r.stepPhase[:0]
		add := func(phase string, steps []plan.Step) {
			for _, st := range steps {
				r.planSteps = append(r.planSteps, st)
				r.stepPhase = append(r.stepPhase, phase)
			}
		}
		add("setup", rec.Plan.Setup)
		for k := 1; k <= rec.Plan.R; k++ {
			if k-1 < len(rec.Plan.Between) {
				for _, cmd := range rec.Plan.Between[k-1] {
					r.planSteps = append(r.planSteps, plan.Step{Command: cmd})
					r.stepPhase = append(r.stepPhase, fmt.Sprintf("before round %d (original)", k))
				}
			}
			add(fmt.Sprintf("round %d", k), rec.Plan.Rounds[k-1])
		}
		if rec.Plan.R < len(rec.Plan.Between) {
			for _, cmd := range rec.Plan.Between[rec.Plan.R] {
				r.planSteps = append(r.planSteps, plan.Step{Command: cmd})
				r.stepPhase = append(r.stepPhase, "after last round (original)")
			}
		}
		add("cleanup", rec.Plan.Cleanup)
		r.stepApplied = make([]bool, len(r.planSteps))
		fmt.Printf("plan ready: R=%d, %d steps, %d temp sessions (use plan-status / plan-next)\n",
			rec.Plan.R, len(r.planSteps), len(rec.Plan.TempSessions))
	case "plan-status":
		if len(r.planSteps) == 0 {
			fmt.Println("no plan; run `plan` first")
			return
		}
		for i, st := range r.planSteps {
			mark := " "
			if r.stepApplied[i] {
				mark = "✔"
			}
			fmt.Printf("%s [%2d] (%s) %s\n", mark, i, r.stepPhase[i], st.Command.Description)
			for _, c := range st.Pre {
				fmt.Printf("      pre:  %-50s %v\n", c, c.Check(net, r.s.Prefix))
			}
			for _, c := range st.Post {
				fmt.Printf("      post: %-50s %v\n", c, c.Check(net, r.s.Prefix))
			}
		}
	case "plan-next":
		if len(r.planSteps) == 0 {
			fmt.Println("no plan; run `plan` first")
			return
		}
		for i, st := range r.planSteps {
			if r.stepApplied[i] {
				continue
			}
			ok := true
			for _, c := range st.Pre {
				if !c.Check(net, r.s.Prefix) {
					ok = false
				}
			}
			if !ok {
				fmt.Printf("step %d blocked on pre-conditions; advance the simulation (step/run)\n", i)
				return
			}
			st.Command.Apply(net)
			r.stepApplied[i] = true
			fmt.Printf("applied [%2d] %s\n", i, st.Command.Description)
			return
		}
		fmt.Println("plan complete")
	case "trace":
		tr := net.Trace(r.s.Prefix)
		if tr == nil {
			fmt.Println("no trace")
			return
		}
		tr.Compact()
		for i, st := range tr.States {
			fmt.Printf("  t=%8.3fs  %v\n", tr.Times[i], st)
		}
	default:
		fmt.Println("unknown command; try help")
	}
}

func nhName(g *topology.Graph, nh topology.NodeID) string {
	switch nh {
	case fwd.Drop:
		return "∅ (drop)"
	case fwd.External:
		return "d (external)"
	default:
		return g.Node(nh).Name
	}
}

func parseNode(g *topology.Graph, s string) (topology.NodeID, bool) {
	if id, ok := g.NodeByName(s); ok {
		return id, true
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 || v >= g.NumNodes() {
		return topology.None, false
	}
	return topology.NodeID(v), true
}
