// Command benchrunner runs the curated macro-benchmark suite
// (internal/perf) and writes a machine-readable trajectory point, or
// compares two such points with a noise-aware regression gate.
//
// Usage:
//
//	benchrunner                      # run the suite, write BENCH_<n>.json
//	benchrunner -out my.json         # run, write to an explicit path
//	benchrunner -reps 9 -min-duration 200ms -filter plan-execute
//	benchrunner -cost                # add a per-phase self-time flame digest
//	benchrunner -list                # print the suite and exit
//	benchrunner -serve :8080         # live /metrics + /healthz + pprof while running
//	benchrunner -mem-budget-mb 4096  # exit 1 if the runtime footprint blows the cap
//	benchrunner -compare old.json new.json   # exit 1 on regressions
//	benchrunner -bundle DIR          # also seal the point into a run bundle
//
// Without -out, the run is written to BENCH_<n>.json in the working
// directory, where <n> is one past the highest existing number — so
// successive runs build a trajectory: BENCH_1.json, BENCH_2.json, …
//
// -compare diffs medians benchmark by benchmark. A benchmark regresses
// when its new median time/op exceeds the old by more than
// max(-threshold, -noise-k·(oldMAD+newMAD)/oldMedian) — runs that were
// noisy must move further before they are believed. Domain counters
// (solver nodes, sim events) are deterministic, so any drift there is
// reported as "the workload itself changed", never as machine noise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"time"

	"chameleon/internal/obs"
	"chameleon/internal/obs/bundle"
	"chameleon/internal/perf"
)

var (
	outFlag       = flag.String("out", "", "output path (default: auto-numbered BENCH_<n>.json in the working directory)")
	repsFlag      = flag.Int("reps", 5, "measured repetitions per benchmark")
	warmupFlag    = flag.Int("warmup", 1, "discarded warmup repetitions per benchmark")
	minDurFlag    = flag.Duration("min-duration", 0, "loop each repetition until this much wall time has elapsed")
	filterFlag    = flag.String("filter", "", "run only benchmarks whose name contains this substring")
	costFlag      = flag.Bool("cost", false, "enable span cost attribution and emit a flame digest per benchmark")
	listFlag      = flag.Bool("list", false, "list the suite and exit")
	serveFlag     = flag.String("serve", "", "serve live /metrics (Prometheus text format), /healthz and /debug/pprof on this address while running (\":0\" picks an ephemeral port; the bound address is printed)")
	compareFlag   = flag.Bool("compare", false, "compare two BENCH files: benchrunner -compare old.json new.json")
	thresholdFlag = flag.Float64("threshold", 0.10, "base relative slowdown tolerated by -compare")
	noiseKFlag    = flag.Float64("noise-k", 3, "noise widening factor for -compare (K·(oldMAD+newMAD)/oldMedian)")
	memBudgetFlag = flag.Int64("mem-budget-mb", 0, "fail the run if the Go runtime footprint (MemStats.Sys) exceeds this many MiB at any repetition boundary (0: no guard)")
	bundleFlag    = flag.String("bundle", "", "also seal the BENCH point into a content-addressed run bundle at this directory (obsdiff compares bench parts by their deterministic domain counters)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run() error {
	if *compareFlag {
		return compare(flag.Args())
	}
	suite := perf.DefaultSuite()
	if *listFlag {
		for _, b := range suite {
			fmt.Println(b.Name)
		}
		return nil
	}

	cfg := perf.Config{
		Warmup:      *warmupFlag,
		Reps:        *repsFlag,
		MinDuration: *minDurFlag,
		Filter:      *filterFlag,
		Cost:        *costFlag,
	}

	var observers []func(bench string, rep int, rec *obs.Recorder)

	// The memory-budget guard samples the runtime footprint at every
	// repetition boundary. MemStats.Sys is what the process actually holds
	// from the OS — it only ever grows, so the maximum across boundaries is
	// a floor on the run's peak; a benchmark whose working set blows the CI
	// RAM cap trips this even if it would also finish.
	var peakSysMiB int64
	var peakBench string
	if *memBudgetFlag > 0 {
		observers = append(observers, func(bench string, rep int, rec *obs.Recorder) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if sys := int64(ms.Sys >> 20); sys > peakSysMiB {
				peakSysMiB, peakBench = sys, bench
			}
		})
	}

	// The live endpoint serves an aggregate view: every finished
	// repetition's counters folded together, updated as the run progresses.
	if *serveFlag != "" {
		live := obs.New()
		var mu sync.Mutex
		observers = append(observers, func(bench string, rep int, rec *obs.Recorder) {
			mu.Lock()
			defer mu.Unlock()
			for name, v := range rec.Counters() {
				live.Add(name, v)
			}
		})
		_, bound, err := obs.Serve(*serveFlag, live, obs.PromOptions{
			ConstLabels: map[string]string{"job": "benchrunner"},
		}, func(err error) { fmt.Fprintln(os.Stderr, "metrics server:", err) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics server:", err)
			os.Exit(1)
		}
		fmt.Printf("(live metrics on http://%s/metrics, pprof on /debug/pprof/)\n", bound)
	}
	if len(observers) > 0 {
		cfg.Observer = func(bench string, rep int, rec *obs.Recorder) {
			for _, o := range observers {
				o(bench, rep, rec)
			}
		}
	}

	start := time.Now()
	results, err := perf.Run(context.Background(), suite, cfg)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("filter %q matched no benchmark", *filterFlag)
	}
	for _, r := range results {
		fmt.Printf("%-26s %12.0f ns/op (±%.0f)  %8.0f allocs/op", r.Name,
			r.TimeNSPerOp.Median, r.TimeNSPerOp.MAD, r.AllocsPerOp.Median)
		for _, name := range []string{obs.CtrMILPNodes, obs.CtrSimEvents} {
			if d, ok := r.Counters[name]; ok {
				fmt.Printf("  %s=%.0f/op", name, d.Median)
			}
		}
		fmt.Println()
		for _, e := range r.Flame {
			fmt.Printf("    %-32s self %9.3fms/op  cum %9.3fms/op\n",
				e.Path, e.SelfNSPerOp/1e6, e.TotalNSPerOp/1e6)
		}
	}

	if *memBudgetFlag > 0 {
		fmt.Printf("peak runtime footprint %d MiB (budget %d MiB, high-water at %s)\n",
			peakSysMiB, *memBudgetFlag, peakBench)
		if peakSysMiB > *memBudgetFlag {
			return fmt.Errorf("memory budget exceeded: %d MiB > %d MiB (at %s)",
				peakSysMiB, *memBudgetFlag, peakBench)
		}
	}

	out := *outFlag
	if out == "" {
		var err error
		if out, err = nextBenchPath("."); err != nil {
			return err
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := perf.NewFile(results, cfg).Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks, %v total)\n", out, len(results), time.Since(start).Round(time.Millisecond))

	// -bundle seals the freshly written BENCH point into a run bundle: the
	// scenario key is the suite filter (or "suite" for the full run), so
	// two bundled runs of the same suite content-address their bench parts
	// identically iff the deterministic bytes agree (they will not — BENCH
	// files carry wall times — which is why obsdiff compares bench parts
	// structurally, by benchmark set and domain counters only).
	if *bundleFlag != "" {
		scenarioKey := "suite"
		if *filterFlag != "" {
			scenarioKey = "suite:" + *filterFlag
		}
		w, err := bundle.Create(*bundleFlag, scenarioKey, 0)
		if err != nil {
			return err
		}
		w.SetOption("reps", strconv.Itoa(*repsFlag))
		w.SetOption("warmup", strconv.Itoa(*warmupFlag))
		if err := w.AddFile("bench.json", bundle.KindBench, out); err != nil {
			return err
		}
		m, err := w.Close()
		if err != nil {
			return err
		}
		fmt.Printf("(sealed bundle %s: %d parts, id %s)\n", *bundleFlag, len(m.Parts), m.ID)
	}
	return nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextBenchPath picks BENCH_<n>.json with n one past the highest existing
// trajectory point in dir.
func nextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		if m := benchName.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.Atoi(m[1]); err == nil && n > max {
				max = n
			}
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}

func compare(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("-compare wants exactly two files: benchrunner -compare old.json new.json")
	}
	read := func(path string) (*perf.File, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return perf.ReadFile(f)
	}
	oldF, err := read(args[0])
	if err != nil {
		return err
	}
	newF, err := read(args[1])
	if err != nil {
		return err
	}
	rep := perf.Compare(oldF, newF, perf.CompareOptions{
		Threshold: *thresholdFlag,
		NoiseK:    *noiseKFlag,
	})
	rep.WriteText(os.Stdout)
	if rep.Mismatch != "" {
		return fmt.Errorf("files are not comparable")
	}
	if n := rep.Regressions(); n > 0 {
		return fmt.Errorf("%d regression(s) beyond the noise-aware threshold", n)
	}
	return nil
}
