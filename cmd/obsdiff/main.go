// Command obsdiff structurally compares two run bundles written by the
// evaluation harnesses (evalharness -bundle, benchrunner -bundle) and
// explains the first point where the runs diverged — down to the first
// diverging timeline event and the root cause the monitor attributed to
// it.
//
// Usage:
//
//	obsdiff [flags] BUNDLE_A BUNDLE_B
//
// Exit status: 0 when the bundles are structurally equivalent (the CI
// determinism gate: same seed twice must exit 0 at any worker count), 1
// when they diverge, 2 on error (unreadable, tampered or torn bundles).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chameleon/internal/obs/diff"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("obsdiff", flag.ExitOnError)
	tolerance := fs.Float64("tolerance", 0,
		"relative slack on counters/gauges/histograms (0 = exact, the determinism gate)")
	ignore := fs.String("ignore", "",
		"comma-separated metric names to exempt beyond the built-in exemptions")
	quiet := fs.Bool("q", false, "suppress the report; exit status only")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: obsdiff [flags] BUNDLE_A BUNDLE_B\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	opts := diff.Options{Tolerance: *tolerance}
	if *ignore != "" {
		opts.IgnoreMetrics = make(map[string]bool, len(diff.DefaultIgnoredMetrics))
		for name := range diff.DefaultIgnoredMetrics {
			opts.IgnoreMetrics[name] = true
		}
		for _, name := range strings.Split(*ignore, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.IgnoreMetrics[name] = true
			}
		}
	}

	rep, err := diff.Dirs(fs.Arg(0), fs.Arg(1), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsdiff: %v\n", err)
		return 2
	}
	if !*quiet {
		if err := rep.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "obsdiff: %v\n", err)
			return 2
		}
	}
	if rep.Empty() {
		return 0
	}
	return 1
}
