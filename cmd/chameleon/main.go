// Command chameleon plans and executes a safe BGP reconfiguration on a
// simulated network scenario, printing the compiled plan (Fig. 4 style) and
// the execution timeline (Fig. 6 style).
//
// Usage:
//
//	chameleon -topo Abilene -seed 7            # case-study scenario
//	chameleon -example                          # Fig. 3 running example
//	chameleon -topo Sprint -spec "G reach(Sprint_r03)"
//	chameleon -topo Abilene -plan-only          # print the plan, don't run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	chameleon "chameleon"
	"chameleon/internal/config"
	"chameleon/internal/eval"
	"chameleon/internal/scheduler"
)

var (
	topoFlag   = flag.String("topo", "Abilene", "corpus topology name (see -list)")
	configFlag = flag.String("config", "", "scenario configuration file (overrides -topo)")
	seedFlag   = flag.Uint64("seed", 7, "scenario seed")
	specFlag   = flag.String("spec", "", "specification (Fig. 2 syntax); default Eq. 4")
	example    = flag.Bool("example", false, "use the Fig. 3 running example instead of -topo")
	planOnly   = flag.Bool("plan-only", false, "compute and print the plan without executing")
	listFlag   = flag.Bool("list", false, "list corpus topologies and exit")
	maxR       = flag.Int("max-rounds", 16, "round-minimization cap")
)

func main() {
	flag.Parse()
	if *listFlag {
		for _, name := range chameleon.ZooNames() {
			fmt.Println(name)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chameleon:", err)
		os.Exit(1)
	}
}

func run() error {
	var s *chameleon.Scenario
	var err error
	switch {
	case *configFlag != "":
		raw, rerr := os.ReadFile(*configFlag)
		if rerr != nil {
			return rerr
		}
		cfg, cerr := config.Parse(string(raw))
		if cerr != nil {
			return cerr
		}
		s, err = cfg.Scenario(*seedFlag)
		if err != nil {
			return err
		}
	case *example:
		s = chameleon.RunningExample()
	default:
		s, err = chameleon.NewCaseStudy(*topoFlag, *seedFlag)
		if err != nil {
			return err
		}
	}
	fmt.Printf("scenario: %s — %s\n", s.Name, s.Graph)
	fmt.Printf("reconfiguration: %s\n", s.Commands[0].Description)

	opts := chameleon.PlanOptions{MaxRounds: *maxR}
	if *specFlag != "" {
		sp, err := chameleon.ParseSpec(*specFlag, s.Graph)
		if err != nil {
			return err
		}
		opts.Spec = sp
	} else if !*example && *configFlag == "" {
		// Default to the paper's Eq. 4 for case studies.
		pipe, err := eval.BuildPipeline(s, eval.SpecEq4, schedOptsFrom(opts))
		if err != nil {
			return err
		}
		return report(&chameleon.Reconfiguration{
			Scenario: s, Analysis: pipe.Analysis, Spec: pipe.Spec,
			Schedule: pipe.Schedule, Plan: pipe.Plan,
		})
	}
	rec, err := chameleon.Plan(s, opts)
	if err != nil {
		return err
	}
	return report(rec)
}

func report(rec *chameleon.Reconfiguration) error {
	fmt.Printf("specification: %v\n", rec.Spec)
	fmt.Printf("schedule: R=%d rounds, %d temp sessions, solved in %v (%d solver nodes)\n",
		rec.Schedule.R, rec.Schedule.TempOldSessions+rec.Schedule.TempNewSessions,
		rec.Schedule.Stats.Duration.Round(time.Millisecond), rec.Schedule.Stats.SolverNodes)
	fmt.Printf("estimated reconfiguration time T̃ = %v\n\n", rec.EstimateReconfigurationTime())
	fmt.Print(rec.Plan.String())
	if *planOnly {
		return nil
	}
	fmt.Println("\nexecuting…")
	res, err := rec.Execute(chameleon.ExecOptions{})
	if err != nil {
		return err
	}
	for _, ph := range res.Phases {
		fmt.Printf("  %-10s %8.1f s → %8.1f s\n", ph.Name, ph.Start.Seconds(), ph.End.Seconds())
	}
	fmt.Printf("done in %v simulated; max table entries %d\n",
		res.Duration().Round(time.Millisecond), res.MaxTableEntries)
	if err := rec.Verify(res); err != nil {
		return fmt.Errorf("POST-CHECK FAILED: %w", err)
	}
	fmt.Println("post-check: specification held in every transient state ✓")
	return nil
}

func schedOptsFrom(o chameleon.PlanOptions) scheduler.Options {
	out := scheduler.DefaultOptions()
	if o.MaxRounds > 0 {
		out.MaxRounds = o.MaxRounds
	}
	return out
}
